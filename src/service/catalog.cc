#include "service/catalog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/coding.h"
#include "common/event_log.h"
#include "service/service_stats.h"
#include "ts/series_store.h"

namespace kvmatch {

namespace {

/// Sorts before "catalog/" ('!' < '/'), so directory scans never see it.
constexpr const char* kNextEpochKey = "catalog!next-epoch";

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string EncodeLayout(const Session::Options& o, uint64_t epoch) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%zu %zu %.17g %zu %zu %llu", o.wu,
                o.levels, o.width, o.row_cache_rows, o.series_chunk,
                static_cast<unsigned long long>(epoch));
  return buf;
}

bool DecodeLayout(const std::string& in, Session::Options* o,
                  uint64_t* epoch) {
  unsigned long long e = 0;
  const int fields =
      std::sscanf(in.c_str(), "%zu %zu %lf %zu %zu %llu", &o->wu, &o->levels,
                  &o->width, &o->row_cache_rows, &o->series_chunk, &e);
  if (fields < 5) return false;
  *epoch = e;  // 5-field rows (pre-epoch format) read as epoch 0
  return true;
}

/// The commit journal's intent record: everything recovery needs to roll
/// the commit back (delete the new epoch, trim appended tail chunks) or
/// forward (purge the superseded generation).
struct JournalRecord {
  uint64_t epoch = 0;        // the epoch being committed
  std::string data_ns;       // shared chunk namespace the epoch writes
  bool has_prior = false;    // false for CreateSeries
  uint64_t prior_epoch = 0;
  std::string prior_data_ns;
  uint64_t prior_length = 0;  // committed points before this commit
};

constexpr uint32_t kJournalVersion = 1;

std::string EncodeJournal(const JournalRecord& rec) {
  std::string out;
  PutVarint32(&out, kJournalVersion);
  PutVarint64(&out, rec.epoch);
  PutLengthPrefixed(&out, rec.data_ns);
  PutVarint32(&out, rec.has_prior ? 1 : 0);
  PutVarint64(&out, rec.prior_epoch);
  PutLengthPrefixed(&out, rec.prior_data_ns);
  PutVarint64(&out, rec.prior_length);
  return out;
}

bool DecodeJournal(std::string_view in, JournalRecord* rec) {
  uint32_t version = 0, has_prior = 0;
  std::string_view data_ns, prior_data_ns;
  if (!GetVarint32(&in, &version) || version != kJournalVersion ||
      !GetVarint64(&in, &rec->epoch) ||
      !GetLengthPrefixed(&in, &data_ns) ||
      !GetVarint32(&in, &has_prior) ||
      !GetVarint64(&in, &rec->prior_epoch) ||
      !GetLengthPrefixed(&in, &prior_data_ns) ||
      !GetVarint64(&in, &rec->prior_length)) {
    return false;
  }
  rec->data_ns = std::string(data_ns);
  rec->has_prior = has_prior != 0;
  rec->prior_data_ns = std::string(prior_data_ns);
  return true;
}

}  // namespace

Catalog::Catalog(KvStore* store) : Catalog(store, Options()) {}

Catalog::Catalog(KvStore* store, Options options)
    : store_(store),
      options_(options),
      store_write_mu_(std::make_shared<std::mutex>()) {
  // Instrument before any I/O so recovery scans and journal replays are
  // counted too. Every NsHandle holds the wrapper as keepalive: a purge
  // triggered by a pinned Session released after the catalog died still
  // goes through a live object.
  if (options_.instrument_storage) {
    instrumented_ = std::make_shared<InstrumentedKvStore>(store);
    store_ = instrumented_.get();
  }
  // Never reuse an epoch or data-generation number, even across drops and
  // process restarts: a recreated series must not collide with keys of a
  // dying generation.
  std::string next;
  if (store_->Get(kNextEpochKey, &next).ok()) {
    next_epoch_ =
        static_cast<uint64_t>(std::strtoull(next.c_str(), nullptr, 10));
  }

  // Crash recovery first: journaled half-commits are rolled back or
  // forward before any directory row is trusted.
  RecoverJournals();

  // Directory rows live under "catalog/"; '0' is '/' + 1, so this scan
  // covers exactly the "catalog/<name>" range.
  for (auto it = store_->Scan("catalog/", "catalog0"); it->Valid();
       it->Next()) {
    const std::string name(it->key().substr(std::string("catalog/").size()));
    DirEntry entry;
    entry.layout = options_.session;
    if (!DecodeLayout(std::string(it->value()), &entry.layout,
                      &entry.epoch)) {
      continue;
    }
    next_epoch_ = std::max(next_epoch_, entry.epoch + 1);
    // The epoch header tells us the committed length and which shared
    // data generation the epoch reads (legacy epochs keep their chunks
    // under the epoch namespace itself and read back the same way).
    const std::string epoch_data = SeriesNs(name, entry.epoch) + "data/";
    if (auto header = SeriesStore::Open(store_, epoch_data); header.ok()) {
      entry.length = header->size();
      entry.data_ns = header->data_ns();
    } else {
      entry.data_ns = epoch_data;
    }

    auto data_handle = std::make_shared<NsHandle>();
    data_handle->store = store_;
    data_handle->keepalive = instrumented_;
    data_handle->write_mu = store_write_mu_;
    data_handle->prefix = entry.data_ns;
    data_handle->refs = 1;  // the current epoch
    auto handle = std::make_shared<NsHandle>();
    handle->store = store_;
    handle->keepalive = instrumented_;
    handle->write_mu = store_write_mu_;
    handle->prefix = SeriesNs(name, entry.epoch);
    handle->parent = data_handle;
    data_handles_.emplace(name, std::move(data_handle));
    handles_.emplace(name, std::move(handle));
    directory_.emplace(name, std::move(entry));
  }

  // With the directory restored, anything else under series/ is debris
  // from a crashed drop or a pre-journal failure.
  SweepOrphans();
}

Catalog::~Catalog() {
  std::lock_guard<std::mutex> write_lock(*store_write_mu_);
  (void)store_->Flush();
}

void Catalog::SetStatsRegistry(StatsRegistry* stats) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  stats_ = stats;
  if (stats == nullptr) return;
  // One registry snapshot should cover the whole write path: the store's
  // per-op stats and the event journal's counters ride along.
  if (instrumented_ != nullptr) stats->AttachStorage(instrumented_->stats());
  if (options_.event_log != nullptr) stats->AttachEventLog(options_.event_log);
}

// ---- Crash recovery (constructor only; no concurrency yet) ----

void Catalog::RecoverJournals() {
  std::vector<std::pair<std::string, std::string>> journals;
  for (auto it = store_->Scan("journal/", "journal0"); it->Valid();
       it->Next()) {
    journals.emplace_back(
        std::string(it->key().substr(std::string("journal/").size())),
        std::string(it->value()));
  }
  if (journals.empty()) return;

  for (const auto& [name, raw] : journals) {
    WriteBatch fix;
    JournalRecord rec;
    if (!DecodeJournal(raw, &rec)) {
      // Undecodable intent record: drop it and let the orphan sweep
      // reconcile the namespaces against the directory.
      fix.Delete(JournalKey(name));
      (void)store_->Apply(fix);
      continue;
    }
    next_epoch_ = std::max(next_epoch_, rec.epoch + 1);

    // The directory row is the commit point: if it names the journaled
    // epoch, the flip became durable and we finish the commit; otherwise
    // the epoch never happened and we unwind it.
    std::string dir_raw;
    Session::Options layout = options_.session;
    uint64_t dir_epoch = 0;
    const bool committed =
        store_->Get(DirectoryKey(name), &dir_raw).ok() &&
        DecodeLayout(dir_raw, &layout, &dir_epoch) &&
        dir_epoch == rec.epoch;

    if (committed) {
      // Roll forward: the retire-and-purge the crashed process never ran.
      if (rec.has_prior) {
        const std::string prior_ns = SeriesNs(name, rec.prior_epoch);
        fix.DeleteRange(prior_ns, PrefixUpperBound(prior_ns));
        if (rec.prior_data_ns != rec.data_ns) {
          fix.DeleteRange(rec.prior_data_ns,
                          PrefixUpperBound(rec.prior_data_ns));
        }
      }
      ++recovery_.epochs_rolled_forward;
      if (options_.event_log != nullptr) {
        options_.event_log->Emit(Event{kEventRecoveryRollforward, name}
                                     .Num("epoch", rec.epoch)
                                     .Num("prior_epoch", rec.prior_epoch));
      }
    } else {
      // Roll back: delete the half-written epoch; for an in-place append,
      // trim the tail chunks past the previously committed length (the
      // grown partial chunk is harmless — readers stop at their length).
      const std::string epoch_ns = SeriesNs(name, rec.epoch);
      fix.DeleteRange(epoch_ns, PrefixUpperBound(epoch_ns));
      if (!rec.has_prior || rec.prior_data_ns != rec.data_ns) {
        fix.DeleteRange(rec.data_ns, PrefixUpperBound(rec.data_ns));
      } else {
        fix.DeleteRange(
            SeriesStore::ChunkKey(rec.data_ns, rec.prior_length),
            PrefixUpperBound(rec.data_ns + "c"));
      }
      ++recovery_.epochs_rolled_back;
      if (options_.event_log != nullptr) {
        options_.event_log->Emit(Event{kEventRecoveryRollback, name}
                                     .Num("epoch", rec.epoch)
                                     .Num("prior_length", rec.prior_length));
      }
    }
    // Burn the journaled epoch number durably, even on rollback.
    fix.Put(kNextEpochKey, std::to_string(next_epoch_));
    fix.Delete(JournalKey(name));
    (void)store_->Apply(fix);
  }
  (void)store_->Flush();
}

void Catalog::SweepOrphans() {
  constexpr std::string_view kSeriesPrefix = "series/";
  std::vector<std::string> doomed;
  std::string last_child;
  for (auto it = store_->Scan(kSeriesPrefix,
                              PrefixUpperBound(kSeriesPrefix));
       it->Valid(); it->Next()) {
    const std::string key(it->key());
    const size_t name_end = key.find('/', kSeriesPrefix.size());
    if (name_end == std::string::npos) continue;
    const size_t child_end = key.find('/', name_end + 1);
    if (child_end == std::string::npos) continue;
    std::string child_prefix = key.substr(0, child_end + 1);
    if (child_prefix == last_child) continue;  // scan is ordered
    last_child = child_prefix;

    const std::string name =
        key.substr(kSeriesPrefix.size(), name_end - kSeriesPrefix.size());
    const std::string child =
        key.substr(name_end + 1, child_end - name_end - 1);
    // Epoch-counter safety net: never hand out a number that could
    // collide with keys we are about to (or failed to) delete.
    if (child.size() > 1 && (child[0] == 'e' || child[0] == 'd')) {
      next_epoch_ = std::max(
          next_epoch_,
          static_cast<uint64_t>(
              std::strtoull(child.c_str() + 1, nullptr, 10)) + 1);
    }

    bool valid = false;
    auto dit = directory_.find(name);
    if (dit != directory_.end()) {
      valid = child_prefix == SeriesNs(name, dit->second.epoch) ||
              child_prefix == dit->second.data_ns;
    }
    if (!valid) doomed.push_back(std::move(child_prefix));
  }
  for (const auto& prefix : doomed) {
    (void)store_->DeleteRange(prefix, PrefixUpperBound(prefix));
    ++recovery_.orphans_swept;
    if (options_.event_log != nullptr) {
      options_.event_log->Emit(
          Event{kEventOrphanSweep}.Str("prefix", prefix));
    }
  }
  if (!doomed.empty()) (void)store_->Flush();
}

// ---- Namespace lifecycle ----

void Catalog::PurgeNs(const std::shared_ptr<NsHandle>& handle) {
  // Serialized against ingest commits: purges run on whichever thread
  // drops the last reference, and the store requires one writer at a
  // time. Best-effort — a failed purge only leaks dead keys (which the
  // next open's orphan sweep reclaims).
  std::lock_guard<std::mutex> write_lock(*handle->write_mu);
  (void)handle->store->DeleteRange(handle->prefix,
                                   PrefixUpperBound(handle->prefix));
  (void)handle->store->Flush();
}

void Catalog::ReleaseNs(std::shared_ptr<NsHandle> handle) {
  while (handle != nullptr) {
    bool purge = false;
    {
      std::lock_guard<std::mutex> lock(handle->mu);
      handle->refs -= 1;
      purge = handle->retired && handle->refs == 0 && !handle->purged;
      if (purge) handle->purged = true;
    }
    if (!purge) return;
    PurgeNs(handle);
    // A purged epoch can no longer reach its data generation: release it.
    handle = handle->parent;
  }
}

void Catalog::RetireNs(const std::shared_ptr<NsHandle>& handle) {
  bool purge = false;
  {
    std::lock_guard<std::mutex> lock(handle->mu);
    handle->retired = true;
    purge = handle->refs == 0 && !handle->purged;
    if (purge) handle->purged = true;
  }
  if (!purge) return;  // the last reference's release will purge
  PurgeNs(handle);
  if (handle->parent != nullptr) ReleaseNs(handle->parent);
}

void Catalog::AddNsRef(const std::shared_ptr<NsHandle>& handle) {
  std::lock_guard<std::mutex> lock(handle->mu);
  handle->refs += 1;
}

std::shared_ptr<const Session> Catalog::WrapSession(
    std::shared_ptr<NsHandle> handle, std::unique_ptr<Session> session) {
  AddNsRef(handle);
  return std::shared_ptr<const Session>(
      session.release(), [handle](const Session* s) {
        delete s;
        ReleaseNs(handle);
      });
}

void Catalog::RetireOpenEntryLocked(const std::string& name) {
  auto it = open_.find(name);
  if (it == open_.end()) return;
  retired_.push_back({it->second.session, it->second.bytes});
  open_bytes_ -= it->second.bytes;
  open_.erase(it);
}

// ---- Write path ----

Status Catalog::CommitEpochLocked(const std::string& name,
                                  const SeriesIngestor& ingestor,
                                  CommitKind kind,
                                  uint64_t appended_points) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };
  const auto commit_t0 = Clock::now();

  Session::Options layout;
  bool existed = false;
  uint64_t prior_epoch = 0;
  uint64_t prior_length = 0;
  std::string prior_data_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto dir = directory_.find(name);
    existed = dir != directory_.end();
    layout = existed ? dir->second.layout : options_.session;
    if (existed) {
      prior_epoch = dir->second.epoch;
      prior_length = dir->second.length;
      prior_data_ns = dir->second.data_ns;
    }
  }

  const uint64_t epoch = next_epoch_++;
  const std::string ns = SeriesNs(name, epoch);
  // Appends extend the existing data generation in place; creates and
  // replaces start a fresh one. Legacy (pre-delta-commit) epochs keep
  // their chunks inside the epoch namespace, which the next epoch must
  // not share — migrate them to a shared generation on first append.
  bool new_datagen = kind != CommitKind::kAppend;
  if (!new_datagen && prior_data_ns == SeriesNs(name, prior_epoch) + "data/") {
    new_datagen = true;
  }
  const std::string data_ns =
      new_datagen ? DataGenNs(name, epoch) : prior_data_ns;
  const uint64_t from_offset = new_datagen ? 0 : prior_length;

  JournalRecord rec;
  rec.epoch = epoch;
  rec.data_ns = data_ns;
  rec.has_prior = existed;
  rec.prior_epoch = prior_epoch;
  rec.prior_data_ns = prior_data_ns;
  rec.prior_length = prior_length;

  uint64_t batches = 0;
  CommitBreakdown breakdown;
  double journal_ms = 0.0;
  double flip_ms = 0.0;
  {
    std::lock_guard<std::mutex> write_lock(*store_write_mu_);
    // Intent first: every backend persists staged writes in order, so the
    // journal row is durable no later than any byte of the epoch it
    // describes — a crash mid-commit always leaves the intent behind.
    const auto journal_t0 = Clock::now();
    Status st = store_->Put(JournalKey(name), EncodeJournal(rec));
    journal_ms = ms_since(journal_t0);
    if (st.ok()) st = ingestor.Commit(store_, ns, data_ns, from_offset,
                                      &batches, &breakdown);
    if (st.ok()) {
      // The flip: one atomic batch makes the new epoch the durable truth.
      const auto flip_t0 = Clock::now();
      WriteBatch flip;
      flip.Put(DirectoryKey(name), EncodeLayout(layout, epoch));
      flip.Put(kNextEpochKey, std::to_string(next_epoch_));
      st = store_->Apply(flip);
      if (st.ok()) st = store_->Flush();
      flip_ms = ms_since(flip_t0);
    }
    if (!st.ok()) {
      // Abandon the half-written epoch. The rollback must also unwind the
      // flip: on stores that stage writes until Flush, the directory row
      // may still be pending and would otherwise ride out on a later
      // successful Flush, durably pointing at the purged namespace.
      WriteBatch rollback;
      rollback.DeleteRange(ns, PrefixUpperBound(ns));
      if (new_datagen) {
        rollback.DeleteRange(data_ns, PrefixUpperBound(data_ns));
      } else {
        // In-place append: trim the tail chunks past the committed
        // length; the grown partial chunk stays (readers stop at their
        // header's length, and the next append rewrites it).
        rollback.DeleteRange(SeriesStore::ChunkKey(data_ns, prior_length),
                             PrefixUpperBound(data_ns + "c"));
      }
      if (existed) {
        rollback.Put(DirectoryKey(name),
                     EncodeLayout(layout, prior_epoch));
      } else {
        rollback.Delete(DirectoryKey(name));
      }
      // Never roll the epoch counter back: burning epoch numbers is safe,
      // reusing them is not.
      rollback.Put(kNextEpochKey, std::to_string(next_epoch_));
      rollback.Delete(JournalKey(name));
      (void)store_->Apply(rollback);
      (void)store_->Flush();
      return st;
    }
    // Commit is durable: clear the intent. Best-effort — a lingering
    // journal is re-processed at the next open as an idempotent
    // roll-forward.
    (void)store_->Delete(JournalKey(name));
  }

  auto session = Session::Open(store_, ns, layout);
  if (!session.ok()) return session.status();

  std::shared_ptr<NsHandle> old_handle;
  std::shared_ptr<NsHandle> old_data_handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = handles_.find(name);
    if (hit != handles_.end()) old_handle = hit->second;

    std::shared_ptr<NsHandle> data_handle;
    if (new_datagen) {
      auto dhit = data_handles_.find(name);
      if (dhit != data_handles_.end()) old_data_handle = dhit->second;
      data_handle = std::make_shared<NsHandle>();
      data_handle->store = store_;
      data_handle->keepalive = instrumented_;
      data_handle->write_mu = store_write_mu_;
      data_handle->prefix = data_ns;
      data_handle->refs = 1;  // this epoch
      data_handles_[name] = data_handle;
    } else {
      data_handle = data_handles_.at(name);
      AddNsRef(data_handle);  // the new epoch's reference
    }

    auto handle = std::make_shared<NsHandle>();
    handle->store = store_;
    handle->keepalive = instrumented_;
    handle->write_mu = store_write_mu_;
    handle->prefix = ns;
    handle->parent = std::move(data_handle);
    handles_[name] = handle;
    directory_[name] = {layout, epoch, ingestor.size(), data_ns};

    // The previous generation leaves the open cache but stays accounted
    // (and alive) until its pinned readers finish.
    RetireOpenEntryLocked(name);
    CacheLocked(name,
                WrapSession(std::move(handle), std::move(session).value()));
  }
  // Outside mu_: retiring may purge inline. The superseded data
  // generation is retired first — the old epoch still holds a reference,
  // so its keys survive until that epoch (and its readers) are gone.
  if (old_data_handle != nullptr) RetireNs(old_data_handle);
  if (old_handle != nullptr) RetireNs(old_handle);

  const double total_ms = ms_since(commit_t0);
  const char* kind_name = kind == CommitKind::kCreate    ? "create"
                          : kind == CommitKind::kAppend ? "append"
                                                        : "replace";
  if (stats_ != nullptr) {
    stats_->RecordIngest(name, appended_points, batches);
    stats_->RecordEpochInstalled(name, epoch);
    if (old_handle != nullptr) stats_->RecordEpochRetired();

    CommitRecord record;
    record.kind = kind_name;
    record.total_ms = total_ms;
    record.journal_ms = journal_ms;
    record.data_ms = breakdown.data_ms;
    record.index_ms = breakdown.index_ms;
    record.header_ms = breakdown.header_ms;
    record.flip_ms = flip_ms;
    record.chunk_rows = breakdown.chunk_rows;
    record.index_rows = breakdown.index_rows;
    record.bytes_written = breakdown.bytes_written;
    record.batches = batches;
    stats_->RecordCommit(record);
  }

  const bool slow = options_.slow_commit_ms > 0.0 &&
                    total_ms >= options_.slow_commit_ms;
  if (slow && stats_ != nullptr) stats_->RecordSlowCommit();
  if (options_.event_log != nullptr) {
    options_.event_log->Emit(Event{kEventEpochCommit, name}
                                 .Str("kind", kind_name)
                                 .Num("epoch", epoch)
                                 .Num("points", appended_points)
                                 .Num("batches", batches)
                                 .Num("chunk_rows", breakdown.chunk_rows)
                                 .Num("index_rows", breakdown.index_rows)
                                 .Num("bytes", breakdown.bytes_written)
                                 .FNum("total_ms", total_ms)
                                 .FNum("journal_ms", journal_ms)
                                 .FNum("data_ms", breakdown.data_ms)
                                 .FNum("index_ms", breakdown.index_ms)
                                 .FNum("header_ms", breakdown.header_ms)
                                 .FNum("flip_ms", flip_ms));
    if (slow) {
      options_.event_log->Emit(
          Event{kEventSlowCommit, name}
              .Str("kind", kind_name)
              .Num("epoch", epoch)
              .FNum("total_ms", total_ms)
              .FNum("threshold_ms", options_.slow_commit_ms));
    }
  }
  return Status::OK();
}

Status Catalog::CreateSeries(const std::string& name, TimeSeries series) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad series name: " + name);
  }
  if (series.size() < options_.session.wu) {
    return Status::InvalidArgument("series shorter than smallest window");
  }
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (directory_.count(name) > 0) {
      return Status::InvalidArgument("series already registered: " + name);
    }
  }
  auto ingestor = std::make_unique<SeriesIngestor>(options_.session);
  ingestor->Append(series.values());
  KVMATCH_RETURN_NOT_OK(CommitEpochLocked(name, *ingestor,
                                          CommitKind::kCreate,
                                          series.size()));
  ingestors_[name] = std::move(ingestor);
  return Status::OK();
}

Status Catalog::AppendSeries(const std::string& name,
                             std::span<const double> values) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  DirEntry dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    dir = it->second;
  }
  if (values.empty()) return Status::OK();

  auto iit = ingestors_.find(name);
  if (iit == ingestors_.end()) {
    // Ingest state was never built in this process (or was dropped after
    // a failed commit): reseed it from the current epoch.
    auto session = Acquire(name);
    if (!session.ok()) return session.status();
    auto ingestor = std::make_unique<SeriesIngestor>(dir.layout);
    ingestor->Append((*session)->series().values());
    iit = ingestors_.emplace(name, std::move(ingestor)).first;
  }
  iit->second->Append(values);
  Status st = CommitEpochLocked(name, *iit->second, CommitKind::kAppend,
                                values.size());
  // On failure the ingestor holds points the store never saw; drop it so
  // the next append reseeds from the last committed epoch.
  if (!st.ok()) ingestors_.erase(name);
  return st;
}

Status Catalog::ReplaceSeries(const std::string& name, TimeSeries series) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  DirEntry dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    dir = it->second;
  }
  if (series.size() < dir.layout.wu) {
    return Status::InvalidArgument("series shorter than smallest window");
  }
  auto ingestor = std::make_unique<SeriesIngestor>(dir.layout);
  ingestor->Append(series.values());
  Status st = CommitEpochLocked(name, *ingestor, CommitKind::kReplace,
                                series.size());
  if (st.ok()) {
    ingestors_[name] = std::move(ingestor);
  } else {
    ingestors_.erase(name);
  }
  return st;
}

Status Catalog::DropSeries(const std::string& name) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  std::shared_ptr<NsHandle> old_handle;
  std::shared_ptr<NsHandle> old_data_handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    directory_.erase(it);
    auto hit = handles_.find(name);
    if (hit != handles_.end()) {
      old_handle = hit->second;
      handles_.erase(hit);
    }
    auto dhit = data_handles_.find(name);
    if (dhit != data_handles_.end()) {
      old_data_handle = dhit->second;
      data_handles_.erase(dhit);
    }
    RetireOpenEntryLocked(name);
  }
  ingestors_.erase(name);
  {
    std::lock_guard<std::mutex> write_lock(*store_write_mu_);
    WriteBatch batch;
    batch.Delete(DirectoryKey(name));
    KVMATCH_RETURN_NOT_OK(store_->Apply(batch));
    KVMATCH_RETURN_NOT_OK(store_->Flush());
  }
  // Data generation first: the epoch still references it, so its keys
  // outlive every reader that can still reach them.
  if (old_data_handle != nullptr) RetireNs(old_data_handle);
  if (old_handle != nullptr) RetireNs(old_handle);
  if (stats_ != nullptr) {
    stats_->RecordEpochRetired();
    stats_->RecordSeriesDropped(name);
  }
  if (options_.event_log != nullptr) {
    options_.event_log->Emit(Event{kEventSeriesDrop, name});
  }
  return Status::OK();
}

// ---- Read path ----

Result<std::shared_ptr<const Session>> Catalog::Acquire(
    const std::string& name) {
  for (;;) {
    Session::Options layout;
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (open_.count(name) > 0) return TouchLocked(name);
      auto dir = directory_.find(name);
      if (dir == directory_.end()) {
        return Status::NotFound("unknown series: " + name);
      }
      layout = dir->second.layout;
      epoch = dir->second.epoch;
    }

    // Open outside the lock; a racing thread may open the same series
    // concurrently — the loser's copy is discarded below, which only
    // wastes work, never correctness.
    auto session = Session::Open(store_, SeriesNs(name, epoch), layout);

    std::lock_guard<std::mutex> lock(mu_);
    auto dir = directory_.find(name);
    if (dir == directory_.end()) {
      return Status::NotFound("unknown series: " + name);  // dropped
    }
    if (dir->second.epoch != epoch) continue;  // superseded: reopen fresh
    if (!session.ok()) return session.status();
    if (open_.count(name) > 0) return TouchLocked(name);
    return CacheLocked(name, WrapSession(handles_.at(name),
                                         std::move(session).value()));
  }
}

std::shared_ptr<const Session> Catalog::TouchLocked(const std::string& name) {
  Entry& entry = open_.at(name);
  entry.last_used = ++tick_;
  // Re-measure: store-backed sessions grow as probes warm the row caches,
  // and the budget should see that growth.
  const uint64_t now_bytes = entry.session->MemoryBytes();
  open_bytes_ = open_bytes_ - entry.bytes + now_bytes;
  entry.bytes = now_bytes;
  std::shared_ptr<const Session> session = entry.session;
  EvictOverBudgetLocked(name);
  return session;
}

std::shared_ptr<const Session> Catalog::CacheLocked(
    const std::string& name, std::shared_ptr<const Session> session) {
  Entry entry;
  entry.session = session;
  entry.bytes = session->MemoryBytes();
  entry.last_used = ++tick_;
  open_bytes_ += entry.bytes;
  open_.emplace(name, std::move(entry));
  EvictOverBudgetLocked(name);
  return session;
}

uint64_t Catalog::RetiredBytesLocked() const {
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const RetiredEntry& r) {
                                  return r.session.expired();
                                }),
                 retired_.end());
  uint64_t bytes = 0;
  for (const auto& r : retired_) bytes += r.bytes;
  return bytes;
}

void Catalog::EvictOverBudgetLocked(const std::string& protect) {
  if (options_.memory_budget_bytes == 0) return;
  // Retired-but-pinned generations count against the budget but cannot be
  // evicted (their readers hold them); the pressure lands on open entries.
  const uint64_t retired_bytes = RetiredBytesLocked();
  while (open_bytes_ + retired_bytes > options_.memory_budget_bytes &&
         open_.size() > 1) {
    auto victim = open_.end();
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (it->first == protect) continue;  // keep the entry just touched
      if (victim == open_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == open_.end()) break;
    open_bytes_ -= victim->second.bytes;
    ++evicted_;
    // EventLog::Emit never calls back into the catalog, so emitting under
    // mu_ is safe.
    if (options_.event_log != nullptr) {
      options_.event_log->Emit(Event{kEventEviction, victim->first}
                                   .Num("bytes", victim->second.bytes)
                                   .Num("open_sessions", open_.size() - 1));
    }
    open_.erase(victim);
  }
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.count(name) > 0;
}

std::vector<std::string> Catalog::ListSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, entry] : directory_) names.push_back(name);
  return names;
}

Result<uint64_t> Catalog::SeriesEpoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("unknown series: " + name);
  }
  return it->second.epoch;
}

Result<uint64_t> Catalog::SeriesLength(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("unknown series: " + name);
  }
  return it->second.length;
}

size_t Catalog::cached_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

uint64_t Catalog::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_bytes_;
}

size_t Catalog::retired_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  (void)RetiredBytesLocked();  // prune expired entries
  return retired_.size();
}

uint64_t Catalog::retired_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetiredBytesLocked();
}

uint64_t Catalog::ingest_state_bytes() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  uint64_t bytes = 0;
  for (const auto& [name, ingestor] : ingestors_) {
    bytes += ingestor->MemoryBytes();
  }
  return bytes;
}

CatalogGauges Catalog::Gauges() const {
  CatalogGauges g;
  {
    // mu_ only — ingest_state_bytes() takes ingest_mu_ separately below.
    // (CommitEpochLocked holds ingest_mu_ and then takes mu_, so nesting
    // them here in the opposite order would deadlock.)
    std::lock_guard<std::mutex> lock(mu_);
    g.live_epochs = handles_.size();
    g.data_generations = data_handles_.size();
    g.resident_series = open_.size();
    g.resident_bytes = open_bytes_ + RetiredBytesLocked();
    g.pinned_snapshots = retired_.size();  // pruned by RetiredBytesLocked
    g.memory_budget_bytes = options_.memory_budget_bytes;
    g.series_evicted = evicted_;
  }
  g.ingest_state_bytes = ingest_state_bytes();
  g.journal_replays =
      recovery_.epochs_rolled_back + recovery_.epochs_rolled_forward;
  g.orphans_swept = recovery_.orphans_swept;
  store_->FillGauges(&g.backend);
  return g;
}

}  // namespace kvmatch
