#include "service/catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "service/service_stats.h"

namespace kvmatch {

namespace {

/// Sorts before "catalog/" ('!' < '/'), so directory scans never see it.
constexpr const char* kNextEpochKey = "catalog!next-epoch";

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string EncodeLayout(const Session::Options& o, uint64_t epoch) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%zu %zu %.17g %zu %zu %llu", o.wu,
                o.levels, o.width, o.row_cache_rows, o.series_chunk,
                static_cast<unsigned long long>(epoch));
  return buf;
}

bool DecodeLayout(const std::string& in, Session::Options* o,
                  uint64_t* epoch) {
  unsigned long long e = 0;
  const int fields =
      std::sscanf(in.c_str(), "%zu %zu %lf %zu %zu %llu", &o->wu, &o->levels,
                  &o->width, &o->row_cache_rows, &o->series_chunk, &e);
  if (fields < 5) return false;
  *epoch = e;  // 5-field rows (pre-epoch format) read as epoch 0
  return true;
}

}  // namespace

Catalog::Catalog(KvStore* store) : Catalog(store, Options()) {}

Catalog::Catalog(KvStore* store, Options options)
    : store_(store),
      options_(options),
      store_write_mu_(std::make_shared<std::mutex>()) {
  // Directory rows live under "catalog/"; '0' is '/' + 1, so this scan
  // covers exactly the "catalog/<name>" range.
  for (auto it = store_->Scan("catalog/", "catalog0"); it->Valid();
       it->Next()) {
    const std::string name(it->key().substr(std::string("catalog/").size()));
    DirEntry entry;
    entry.layout = options_.session;
    if (!DecodeLayout(std::string(it->value()), &entry.layout,
                      &entry.epoch)) {
      continue;
    }
    next_epoch_ = std::max(next_epoch_, entry.epoch + 1);
    auto handle = std::make_shared<EpochHandle>();
    handle->store = store_;
    handle->write_mu = store_write_mu_;
    handle->prefix = SeriesNs(name, entry.epoch);
    handles_.emplace(name, std::move(handle));
    directory_.emplace(name, std::move(entry));
  }
  // Never reuse an epoch number, even across drops and process restarts:
  // a recreated series must not collide with keys of a dying generation.
  std::string next;
  if (store_->Get(kNextEpochKey, &next).ok()) {
    next_epoch_ = std::max(
        next_epoch_,
        static_cast<uint64_t>(std::strtoull(next.c_str(), nullptr, 10)));
  }
}

void Catalog::SetStatsRegistry(StatsRegistry* stats) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  stats_ = stats;
}

// ---- Epoch lifecycle ----

void Catalog::PurgeEpoch(const std::shared_ptr<EpochHandle>& handle) {
  // Serialized against ingest commits: purges run on whichever thread
  // drops the last session ref, and the store requires one writer at a
  // time. Best-effort — a failed purge only leaks dead keys.
  std::lock_guard<std::mutex> write_lock(*handle->write_mu);
  (void)handle->store->DeleteRange(handle->prefix,
                                   PrefixUpperBound(handle->prefix));
  (void)handle->store->Flush();
}

std::shared_ptr<const Session> Catalog::WrapSession(
    std::shared_ptr<EpochHandle> handle, std::unique_ptr<Session> session) {
  {
    std::lock_guard<std::mutex> lock(handle->mu);
    handle->sessions += 1;
  }
  return std::shared_ptr<const Session>(
      session.release(), [handle](const Session* s) {
        delete s;
        bool purge = false;
        {
          std::lock_guard<std::mutex> lock(handle->mu);
          handle->sessions -= 1;
          purge = handle->retired && handle->sessions == 0 &&
                  !handle->purged;
          if (purge) handle->purged = true;
        }
        if (purge) PurgeEpoch(handle);
      });
}

bool Catalog::RetireHandle(const std::shared_ptr<EpochHandle>& handle) {
  std::lock_guard<std::mutex> lock(handle->mu);
  handle->retired = true;
  if (handle->sessions == 0 && !handle->purged) {
    handle->purged = true;
    return true;  // caller purges, outside any catalog lock
  }
  return false;  // the last session's deleter will purge
}

void Catalog::RetireOpenEntryLocked(const std::string& name) {
  auto it = open_.find(name);
  if (it == open_.end()) return;
  retired_.push_back({it->second.session, it->second.bytes});
  open_bytes_ -= it->second.bytes;
  open_.erase(it);
}

// ---- Write path ----

Status Catalog::CommitEpochLocked(const std::string& name,
                                  const SeriesIngestor& ingestor,
                                  uint64_t appended_points) {
  Session::Options layout;
  bool existed = false;
  uint64_t prior_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto dir = directory_.find(name);
    existed = dir != directory_.end();
    layout = existed ? dir->second.layout : options_.session;
    if (existed) prior_epoch = dir->second.epoch;
  }

  const uint64_t epoch = next_epoch_++;
  const std::string ns = SeriesNs(name, epoch);
  uint64_t batches = 0;
  {
    std::lock_guard<std::mutex> write_lock(*store_write_mu_);
    Status st = ingestor.Commit(store_, ns, &batches);
    if (st.ok()) {
      // The flip: one atomic batch makes the new epoch the durable truth.
      WriteBatch flip;
      flip.Put(DirectoryKey(name), EncodeLayout(layout, epoch));
      flip.Put(kNextEpochKey, std::to_string(next_epoch_));
      st = store_->Apply(flip);
    }
    if (st.ok()) st = store_->Flush();
    if (!st.ok()) {
      // Abandon the half-written epoch. The rollback must also unwind the
      // flip: on stores that stage writes until Flush, the directory row
      // may still be pending and would otherwise ride out on a later
      // successful Flush, durably pointing at the purged namespace.
      WriteBatch rollback;
      rollback.DeleteRange(ns, PrefixUpperBound(ns));
      if (existed) {
        rollback.Put(DirectoryKey(name),
                     EncodeLayout(layout, prior_epoch));
      } else {
        rollback.Delete(DirectoryKey(name));
      }
      // Never roll the epoch counter back: burning epoch numbers is safe,
      // reusing them is not.
      rollback.Put(kNextEpochKey, std::to_string(next_epoch_));
      (void)store_->Apply(rollback);
      (void)store_->Flush();
      return st;
    }
  }

  auto session = Session::Open(store_, ns, layout);
  if (!session.ok()) return session.status();

  std::shared_ptr<EpochHandle> old_handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = handles_.find(name);
    if (hit != handles_.end()) old_handle = hit->second;

    auto handle = std::make_shared<EpochHandle>();
    handle->store = store_;
    handle->write_mu = store_write_mu_;
    handle->prefix = ns;
    handles_[name] = handle;
    directory_[name] = {layout, epoch};

    // The previous generation leaves the open cache but stays accounted
    // (and alive) until its pinned readers finish.
    RetireOpenEntryLocked(name);
    CacheLocked(name,
                WrapSession(std::move(handle), std::move(session).value()));
  }
  const bool purge_now =
      old_handle != nullptr && RetireHandle(old_handle);
  if (purge_now) PurgeEpoch(old_handle);

  if (stats_ != nullptr) {
    stats_->RecordIngest(name, appended_points, batches);
    stats_->RecordEpochInstalled(name, epoch);
    if (old_handle != nullptr) stats_->RecordEpochRetired();
  }
  return Status::OK();
}

Status Catalog::CreateSeries(const std::string& name, TimeSeries series) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad series name: " + name);
  }
  if (series.size() < options_.session.wu) {
    return Status::InvalidArgument("series shorter than smallest window");
  }
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (directory_.count(name) > 0) {
      return Status::InvalidArgument("series already registered: " + name);
    }
  }
  auto ingestor = std::make_unique<SeriesIngestor>(options_.session);
  ingestor->Append(series.values());
  KVMATCH_RETURN_NOT_OK(CommitEpochLocked(name, *ingestor, series.size()));
  ingestors_[name] = std::move(ingestor);
  return Status::OK();
}

Status Catalog::AppendSeries(const std::string& name,
                             std::span<const double> values) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  DirEntry dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    dir = it->second;
  }
  if (values.empty()) return Status::OK();

  auto iit = ingestors_.find(name);
  if (iit == ingestors_.end()) {
    // Ingest state was never built in this process (or was dropped after
    // a failed commit): reseed it from the current epoch.
    auto session = Acquire(name);
    if (!session.ok()) return session.status();
    auto ingestor = std::make_unique<SeriesIngestor>(dir.layout);
    ingestor->Append((*session)->series().values());
    iit = ingestors_.emplace(name, std::move(ingestor)).first;
  }
  iit->second->Append(values);
  Status st = CommitEpochLocked(name, *iit->second, values.size());
  // On failure the ingestor holds points the store never saw; drop it so
  // the next append reseeds from the last committed epoch.
  if (!st.ok()) ingestors_.erase(name);
  return st;
}

Status Catalog::ReplaceSeries(const std::string& name, TimeSeries series) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  DirEntry dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    dir = it->second;
  }
  if (series.size() < dir.layout.wu) {
    return Status::InvalidArgument("series shorter than smallest window");
  }
  auto ingestor = std::make_unique<SeriesIngestor>(dir.layout);
  ingestor->Append(series.values());
  Status st = CommitEpochLocked(name, *ingestor, series.size());
  if (st.ok()) {
    ingestors_[name] = std::move(ingestor);
  } else {
    ingestors_.erase(name);
  }
  return st;
}

Status Catalog::DropSeries(const std::string& name) {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  std::shared_ptr<EpochHandle> old_handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(name);
    if (it == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    directory_.erase(it);
    auto hit = handles_.find(name);
    if (hit != handles_.end()) {
      old_handle = hit->second;
      handles_.erase(hit);
    }
    RetireOpenEntryLocked(name);
  }
  ingestors_.erase(name);
  {
    std::lock_guard<std::mutex> write_lock(*store_write_mu_);
    WriteBatch batch;
    batch.Delete(DirectoryKey(name));
    KVMATCH_RETURN_NOT_OK(store_->Apply(batch));
    KVMATCH_RETURN_NOT_OK(store_->Flush());
  }
  if (old_handle != nullptr && RetireHandle(old_handle)) {
    PurgeEpoch(old_handle);
  }
  if (stats_ != nullptr) {
    stats_->RecordEpochRetired();
    stats_->RecordSeriesDropped(name);
  }
  return Status::OK();
}

// ---- Read path ----

Result<std::shared_ptr<const Session>> Catalog::Acquire(
    const std::string& name) {
  for (;;) {
    Session::Options layout;
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (open_.count(name) > 0) return TouchLocked(name);
      auto dir = directory_.find(name);
      if (dir == directory_.end()) {
        return Status::NotFound("unknown series: " + name);
      }
      layout = dir->second.layout;
      epoch = dir->second.epoch;
    }

    // Open outside the lock; a racing thread may open the same series
    // concurrently — the loser's copy is discarded below, which only
    // wastes work, never correctness.
    auto session = Session::Open(store_, SeriesNs(name, epoch), layout);

    std::lock_guard<std::mutex> lock(mu_);
    auto dir = directory_.find(name);
    if (dir == directory_.end()) {
      return Status::NotFound("unknown series: " + name);  // dropped
    }
    if (dir->second.epoch != epoch) continue;  // superseded: reopen fresh
    if (!session.ok()) return session.status();
    if (open_.count(name) > 0) return TouchLocked(name);
    return CacheLocked(name, WrapSession(handles_.at(name),
                                         std::move(session).value()));
  }
}

std::shared_ptr<const Session> Catalog::TouchLocked(const std::string& name) {
  Entry& entry = open_.at(name);
  entry.last_used = ++tick_;
  // Re-measure: store-backed sessions grow as probes warm the row caches,
  // and the budget should see that growth.
  const uint64_t now_bytes = entry.session->MemoryBytes();
  open_bytes_ = open_bytes_ - entry.bytes + now_bytes;
  entry.bytes = now_bytes;
  std::shared_ptr<const Session> session = entry.session;
  EvictOverBudgetLocked(name);
  return session;
}

std::shared_ptr<const Session> Catalog::CacheLocked(
    const std::string& name, std::shared_ptr<const Session> session) {
  Entry entry;
  entry.session = session;
  entry.bytes = session->MemoryBytes();
  entry.last_used = ++tick_;
  open_bytes_ += entry.bytes;
  open_.emplace(name, std::move(entry));
  EvictOverBudgetLocked(name);
  return session;
}

uint64_t Catalog::RetiredBytesLocked() const {
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const RetiredEntry& r) {
                                  return r.session.expired();
                                }),
                 retired_.end());
  uint64_t bytes = 0;
  for (const auto& r : retired_) bytes += r.bytes;
  return bytes;
}

void Catalog::EvictOverBudgetLocked(const std::string& protect) {
  if (options_.memory_budget_bytes == 0) return;
  // Retired-but-pinned generations count against the budget but cannot be
  // evicted (their readers hold them); the pressure lands on open entries.
  const uint64_t retired_bytes = RetiredBytesLocked();
  while (open_bytes_ + retired_bytes > options_.memory_budget_bytes &&
         open_.size() > 1) {
    auto victim = open_.end();
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (it->first == protect) continue;  // keep the entry just touched
      if (victim == open_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == open_.end()) break;
    open_bytes_ -= victim->second.bytes;
    open_.erase(victim);
  }
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.count(name) > 0;
}

std::vector<std::string> Catalog::ListSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, entry] : directory_) names.push_back(name);
  return names;
}

Result<uint64_t> Catalog::SeriesEpoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("unknown series: " + name);
  }
  return it->second.epoch;
}

size_t Catalog::cached_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

uint64_t Catalog::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_bytes_;
}

size_t Catalog::retired_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  (void)RetiredBytesLocked();  // prune expired entries
  return retired_.size();
}

uint64_t Catalog::retired_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetiredBytesLocked();
}

uint64_t Catalog::ingest_state_bytes() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  uint64_t bytes = 0;
  for (const auto& [name, ingestor] : ingestors_) {
    bytes += ingestor->MemoryBytes();
  }
  return bytes;
}

}  // namespace kvmatch
