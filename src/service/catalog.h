// Catalog: many named series multiplexed over one shared KvStore, mutable
// while queries are running.
//
// Every generation of a series lives under its own epoch-versioned key
// namespace "series/<name>/e<epoch>/" (chunked data at ".../data/", the
// index stack at ".../idx/w<w>/"); a directory row "catalog/<name>"
// records the index layout plus the current epoch. Epoch namespaces are
// written once and never mutated, which is the MVCC story: a query pins a
// shared_ptr snapshot (the Session opened on some epoch) at Acquire time
// and runs against it to completion, while CreateSeries / AppendSeries /
// ReplaceSeries / DropSeries build the next epoch beside it, flip the
// directory row, and retire the old epoch. A retired epoch's keys are
// range-deleted from the store the moment its last pinned Session is
// released — queries never observe torn or mixed-epoch state.
//
// Appends are incremental: a per-series SeriesIngestor keeps the
// IncrementalIndexBuilder state warm across appends, so extending a series
// by k points updates the index rows for the affected windows instead of
// rebuilding from scratch (the builder state is rebuilt lazily from the
// current session if it was dropped).
//
// Sessions opened on first query are cached; when the cached sessions'
// resident footprint — including retired generations still pinned by
// in-flight queries — exceeds the memory budget, the least-recently-used
// open sessions are dropped. In-flight queries keep evicted or retired
// sessions alive through their shared_ptr, so eviction is always safe
// under concurrency.
//
// Write operations are serialized with each other (and with retired-epoch
// cleanup) internally; they never block readers beyond the storage
// layer's brief write locks.
#ifndef KVMATCH_SERVICE_CATALOG_H_
#define KVMATCH_SERVICE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "matchdp/session.h"
#include "service/ingest.h"
#include "storage/kvstore.h"

namespace kvmatch {

class StatsRegistry;

class Catalog {
 public:
  struct Options {
    Session::Options session;
    /// Budget for cached sessions' MemoryBytes() across both generations
    /// (open + retired-but-pinned); the most recently used session is
    /// always retained. 0 means unlimited.
    uint64_t memory_budget_bytes = 256ull << 20;
  };

  /// Opens a catalog over `store` (which must outlive the catalog — and
  /// every Session handed out by Acquire). Any series previously ingested
  /// into the store are discovered from their directory rows and become
  /// queryable immediately.
  Catalog(KvStore* store, Options options);
  explicit Catalog(KvStore* store);

  // ---- Write path. Safe while queries are in flight; individual calls
  // ---- serialize against each other.

  /// Registers `series` under `name` (letters/digits/._- only) as epoch 0
  /// of a new series. Fails with InvalidArgument if the name is taken,
  /// malformed, or the series is shorter than the smallest index window.
  Status CreateSeries(const std::string& name, TimeSeries series);

  /// Legacy name for CreateSeries.
  Status Ingest(const std::string& name, TimeSeries series) {
    return CreateSeries(name, std::move(series));
  }

  /// Extends `name` with `values`, installing a new epoch. Queries already
  /// running (or holding a previously Acquired session) keep their epoch;
  /// new Acquires see the extended series. NotFound if unregistered.
  Status AppendSeries(const std::string& name, std::span<const double> values);

  /// Replaces `name`'s values wholesale with `series` (new epoch, fresh
  /// ingest state). NotFound if unregistered.
  Status ReplaceSeries(const std::string& name, TimeSeries series);

  /// Unregisters `name`: new Acquires fail with NotFound immediately,
  /// in-flight queries complete on their pinned epoch, and the series'
  /// keys are deleted once the last pinned session is released.
  Status DropSeries(const std::string& name);

  // ---- Read path.

  /// Returns the (shared, immutable) session for `name`'s current epoch,
  /// opening it from the store if it is not cached. Safe from any number
  /// of threads, including concurrently with the write path.
  Result<std::shared_ptr<const Session>> Acquire(const std::string& name);

  bool Contains(const std::string& name) const;
  std::vector<std::string> ListSeries() const;

  /// Current epoch of `name` (NotFound if unregistered).
  Result<uint64_t> SeriesEpoch(const std::string& name) const;

  /// Optional sink for ingest metrics (points appended, batches
  /// committed, epochs installed/retired). Call before serving traffic;
  /// the registry must outlive the catalog's write-path use.
  void SetStatsRegistry(StatsRegistry* stats);

  // ---- Cache introspection (for tests and stats).

  size_t cached_sessions() const;
  uint64_t cached_bytes() const;
  /// Superseded generations still pinned by in-flight readers.
  size_t retired_sessions() const;
  uint64_t retired_bytes() const;
  /// Resident bytes of the per-series incremental ingest state.
  uint64_t ingest_state_bytes() const;

 private:
  /// Cleanup token for one epoch namespace, shared between the catalog
  /// and the deleters of every Session opened on that epoch. The epoch's
  /// keys are purged when it has been retired AND its last session died —
  /// whichever happens second.
  struct EpochHandle {
    KvStore* store = nullptr;
    std::shared_ptr<std::mutex> write_mu;  // serializes all store writes
    std::string prefix;  // "series/<name>/e<epoch>/"

    std::mutex mu;
    int sessions = 0;     // live Session objects on this epoch
    bool retired = false; // a newer epoch was installed (or series dropped)
    bool purged = false;
  };

  struct DirEntry {
    Session::Options layout;
    uint64_t epoch = 0;
  };

  struct Entry {
    std::shared_ptr<const Session> session;
    uint64_t bytes = 0;
    uint64_t last_used = 0;  // LRU tick
  };

  /// A superseded generation, tracked until its readers finish so the
  /// memory budget sees both generations.
  struct RetiredEntry {
    std::weak_ptr<const Session> session;
    uint64_t bytes = 0;
  };

  static std::string SeriesNs(const std::string& name, uint64_t epoch) {
    return "series/" + name + "/e" + std::to_string(epoch) + "/";
  }
  static std::string DirectoryKey(const std::string& name) {
    return "catalog/" + name;
  }

  /// Purges `handle`'s keys from the store (under the shared write lock).
  static void PurgeEpoch(const std::shared_ptr<EpochHandle>& handle);

  /// Wraps a freshly opened session so its destruction participates in
  /// `handle`'s retire-and-purge protocol.
  static std::shared_ptr<const Session> WrapSession(
      std::shared_ptr<EpochHandle> handle, std::unique_ptr<Session> session);

  /// Builds the next epoch from `ingestor`, flips the directory row and
  /// installs the session, retiring `name`'s previous epoch (if any).
  /// Caller must hold ingest_mu_. `appended_points` is for stats only.
  Status CommitEpochLocked(const std::string& name,
                           const SeriesIngestor& ingestor,
                           uint64_t appended_points);

  /// Marks `handle` retired; returns true if the caller must purge it now
  /// (no live sessions remain). Never purges inline — callers run
  /// PurgeEpoch outside mu_.
  static bool RetireHandle(const std::shared_ptr<EpochHandle>& handle);

  /// Caches `session` for `name` and evicts LRU entries over budget.
  /// Returns the cached pointer. Caller must hold mu_.
  std::shared_ptr<const Session> CacheLocked(
      const std::string& name, std::shared_ptr<const Session> session);

  /// Bumps `name`'s LRU tick, re-measures its MemoryBytes (row caches
  /// warm over time) and evicts over budget. Caller must hold mu_.
  std::shared_ptr<const Session> TouchLocked(const std::string& name);

  /// Drops LRU entries (never `protect`) until open + retired bytes fit
  /// the budget. Caller must hold mu_.
  void EvictOverBudgetLocked(const std::string& protect);

  /// Prunes expired retired entries and returns the still-pinned bytes.
  /// Caller must hold mu_.
  uint64_t RetiredBytesLocked() const;

  /// Moves `name`'s open entry (if any) to the retired list. Caller must
  /// hold mu_.
  void RetireOpenEntryLocked(const std::string& name);

  KvStore* store_;
  Options options_;
  StatsRegistry* stats_ = nullptr;  // set once before traffic; see setter

  /// Serializes whole write-path calls (create/append/replace/drop) and
  /// guards ingestors_ / next_epoch_ / stats_.
  mutable std::mutex ingest_mu_;
  /// Serializes raw store writes between ingest commits and retired-epoch
  /// purges (which run on whichever thread drops the last session ref).
  /// shared_ptr so purges stay safe if they outlive the catalog.
  std::shared_ptr<std::mutex> store_write_mu_;
  std::map<std::string, std::unique_ptr<SeriesIngestor>> ingestors_;
  uint64_t next_epoch_ = 0;

  mutable std::mutex mu_;
  std::map<std::string, DirEntry> directory_;  // registered series
  std::map<std::string, std::shared_ptr<EpochHandle>> handles_;  // current
  std::map<std::string, Entry> open_;
  mutable std::vector<RetiredEntry> retired_;
  uint64_t open_bytes_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_CATALOG_H_
