// Catalog: many named series multiplexed over one shared KvStore.
//
// Each series lives under the key namespace "series/<name>/" (chunked data
// at ".../data/", the index stack at ".../idx/w<w>/"), with a directory row
// "catalog/<name>" recording its index layout. Sessions are opened lazily
// on first query and cached; when the cached sessions' resident footprint
// exceeds the memory budget, the least-recently-used ones are dropped.
// In-flight queries keep evicted sessions alive through their shared_ptr,
// so eviction is always safe under concurrency.
#ifndef KVMATCH_SERVICE_CATALOG_H_
#define KVMATCH_SERVICE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "matchdp/session.h"
#include "storage/kvstore.h"

namespace kvmatch {

class Catalog {
 public:
  struct Options {
    Session::Options session;
    /// Budget for cached sessions' MemoryBytes(); the most recently used
    /// session is always retained. 0 means unlimited.
    uint64_t memory_budget_bytes = 256ull << 20;
  };

  /// Opens a catalog over `store` (which must outlive the catalog). Any
  /// series previously ingested into the store are discovered from their
  /// directory rows and become queryable immediately.
  Catalog(KvStore* store, Options options);
  explicit Catalog(KvStore* store);

  /// Ingests `series` under `name` (letters/digits/._- only) and registers
  /// it in the directory. The freshly built session is cached, so the
  /// first queries need not reopen from the store. Fails with
  /// InvalidArgument if the name is taken or malformed.
  ///
  /// Ingests are serialized with each other, but writing into the store
  /// follows the backing KvStore's write/read contract — FileKvStore
  /// rewrites the file at Flush and MemKvStore mutates its map, so treat
  /// Ingest as an administrative operation: do not run it while queries
  /// are in flight against the same store. (Online ingest needs an MVCC
  /// store; see ROADMAP.)
  Status Ingest(const std::string& name, TimeSeries series);

  /// Returns the (shared, immutable) session for `name`, opening it from
  /// the store if it is not cached. Safe from any number of threads.
  Result<std::shared_ptr<const Session>> Acquire(const std::string& name);

  bool Contains(const std::string& name) const;
  std::vector<std::string> ListSeries() const;

  /// Cache introspection (for tests and stats).
  size_t cached_sessions() const;
  uint64_t cached_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const Session> session;
    uint64_t bytes = 0;
    uint64_t last_used = 0;  // LRU tick
  };

  static std::string SeriesNs(const std::string& name) {
    return "series/" + name + "/";
  }
  static std::string DirectoryKey(const std::string& name) {
    return "catalog/" + name;
  }

  /// Caches `session` for `name` and evicts LRU entries over budget.
  /// Returns the cached pointer. Caller must hold mu_.
  std::shared_ptr<const Session> CacheLocked(
      const std::string& name, std::shared_ptr<const Session> session);

  /// Bumps `name`'s LRU tick, re-measures its MemoryBytes (row caches
  /// warm over time) and evicts over budget. Caller must hold mu_.
  std::shared_ptr<const Session> TouchLocked(const std::string& name);

  /// Drops LRU entries (never `protect`) until within budget. Caller
  /// must hold mu_.
  void EvictOverBudgetLocked(const std::string& protect);

  KvStore* store_;
  Options options_;

  std::mutex ingest_mu_;  // serializes whole Ingest calls
  mutable std::mutex mu_;
  std::map<std::string, Session::Options> directory_;  // registered series
  std::map<std::string, Entry> open_;
  uint64_t open_bytes_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_CATALOG_H_
