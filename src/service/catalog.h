// Catalog: many named series multiplexed over one shared KvStore, mutable
// while queries are running.
//
// Key layout (the epoch delta-commit scheme):
//
//   series/<name>/d<G>/c...   shared, append-only data-chunk rows
//   series/<name>/e<N>/data/h per-epoch header (length + redirect to d<G>)
//   series/<name>/e<N>/idx/   per-epoch index stack
//   catalog/<name>            directory row: index layout + current epoch
//   journal/<name>            commit journal (present only mid-commit)
//
// Data-chunk rows live in a per-series *data generation* namespace that is
// written once per offset and never rewritten: an append adds the grown
// tail chunks and leaves every previously committed chunk untouched, so
// extending a series by k points costs O(k + index) writes regardless of
// how long the series already is. Only the header and the index levels are
// versioned per epoch. A new data generation is allocated when the values
// actually change wholesale (CreateSeries / ReplaceSeries); the old one
// stays alive until the last epoch referencing it is purged.
//
// Epoch namespaces are written once and never mutated, which is the MVCC
// story: a query pins a shared_ptr snapshot (the Session opened on some
// epoch) at Acquire time and runs against it to completion, while
// CreateSeries / AppendSeries / ReplaceSeries / DropSeries build the next
// epoch beside it, flip the directory row, and retire the old epoch. A
// retired epoch's keys are range-deleted from the store the moment its
// last pinned Session is released — queries never observe torn or
// mixed-epoch state. (Shared data rows are safe to read concurrently with
// an append because appends only add chunks or grow the final partial one;
// a reader pinned on an older header stops at its own length.)
//
// Crash safety: every commit writes an intent record to journal/<name>
// first and clears it last. If the process dies mid-commit, the next
// Catalog opened over the store rolls the commit back (epoch keys deleted,
// appended tail chunks trimmed) or forward (the directory flip landed:
// the superseded epoch is purged) and then sweeps any orphaned
// series/<name>/ child namespaces that no directory row references. See
// recovery_report() for what a given open had to repair.
//
// Appends are incremental: a per-series SeriesIngestor keeps the
// IncrementalIndexBuilder state warm across appends, so extending a series
// by k points updates the index rows for the affected windows instead of
// rebuilding from scratch (the builder state is rebuilt lazily from the
// current session if it was dropped).
//
// Sessions opened on first query are cached; when the cached sessions'
// resident footprint — including retired generations still pinned by
// in-flight queries — exceeds the memory budget, the least-recently-used
// open sessions are dropped. In-flight queries keep evicted or retired
// sessions alive through their shared_ptr, so eviction is always safe
// under concurrency.
//
// Write operations are serialized with each other (and with retired-epoch
// cleanup) internally; they never block readers beyond the storage
// layer's brief write locks.
#ifndef KVMATCH_SERVICE_CATALOG_H_
#define KVMATCH_SERVICE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "matchdp/session.h"
#include "service/ingest.h"
#include "service/service_stats.h"
#include "storage/instrumented_kvstore.h"
#include "storage/kvstore.h"

namespace kvmatch {

class EventLog;

class Catalog {
 public:
  struct Options {
    Session::Options session;
    /// Budget for cached sessions' MemoryBytes() across both generations
    /// (open + retired-but-pinned); the most recently used session is
    /// always retained. 0 means unlimited.
    uint64_t memory_budget_bytes = 256ull << 20;
    /// Wrap the store in an InstrumentedKvStore so every op this catalog
    /// issues — recovery scans included — feeds per-op counters and
    /// latency histograms (storage_stats()). The wrapper is one virtual
    /// call plus a few relaxed atomics per op.
    bool instrument_storage = true;
    /// Optional structured event journal (epoch commits, recovery
    /// roll-backs/forwards, orphan sweeps, evictions, drops). Not owned;
    /// must outlive the catalog and every Session it hands out (purges on
    /// release can emit). nullptr disables.
    EventLog* event_log = nullptr;
    /// Commits whose end-to-end latency reaches this emit a "slow_commit"
    /// event and bump kvmatch_slow_commits_total. 0 disables.
    double slow_commit_ms = 0.0;
  };

  /// What crash recovery had to repair while opening the catalog. All
  /// zeros after a clean shutdown.
  struct RecoveryReport {
    /// Journaled commits whose directory flip never became durable: the
    /// half-written epoch was deleted and appended tail chunks trimmed.
    uint64_t epochs_rolled_back = 0;
    /// Journaled commits that were durable but whose crashed process never
    /// retired the superseded epoch: the old generation was purged.
    uint64_t epochs_rolled_forward = 0;
    /// series/<name>/ child namespaces no directory row referenced
    /// (crashed drops, pre-journal debris) that were range-deleted.
    uint64_t orphans_swept = 0;

    bool clean() const {
      return epochs_rolled_back == 0 && epochs_rolled_forward == 0 &&
             orphans_swept == 0;
    }
  };

  /// Opens a catalog over `store` (which must outlive the catalog — and
  /// every Session handed out by Acquire). Any series previously ingested
  /// into the store are discovered from their directory rows and become
  /// queryable immediately; half-committed epochs left by a crashed
  /// process are rolled back or forward and orphaned namespaces swept
  /// before the first query can run.
  Catalog(KvStore* store, Options options);
  explicit Catalog(KvStore* store);

  /// Flushes staged store writes (journal clears ride later flushes) so a
  /// clean shutdown reopens with a clean recovery report. A crash skips
  /// this; the lingering intent replays as an idempotent roll-forward.
  ~Catalog();

  // ---- Write path. Safe while queries are in flight; individual calls
  // ---- serialize against each other.

  /// Registers `series` under `name` (letters/digits/._- only) as a new
  /// series. Fails with InvalidArgument if the name is taken, malformed,
  /// or the series is shorter than the smallest index window.
  Status CreateSeries(const std::string& name, TimeSeries series);

  /// Legacy name for CreateSeries.
  Status Ingest(const std::string& name, TimeSeries series) {
    return CreateSeries(name, std::move(series));
  }

  /// Extends `name` with `values`, installing a new epoch. Writes only
  /// the appended tail chunks plus the new epoch's header and index rows
  /// — never the data rows previous commits wrote. Queries already
  /// running (or holding a previously Acquired session) keep their epoch;
  /// new Acquires see the extended series. NotFound if unregistered.
  Status AppendSeries(const std::string& name, std::span<const double> values);

  /// Replaces `name`'s values wholesale with `series` (new epoch, new
  /// data generation, fresh ingest state). NotFound if unregistered.
  Status ReplaceSeries(const std::string& name, TimeSeries series);

  /// Unregisters `name`: new Acquires fail with NotFound immediately,
  /// in-flight queries complete on their pinned epoch, and the series'
  /// keys are deleted once the last pinned session is released.
  Status DropSeries(const std::string& name);

  // ---- Read path.

  /// Returns the (shared, immutable) session for `name`'s current epoch,
  /// opening it from the store if it is not cached. Safe from any number
  /// of threads, including concurrently with the write path.
  Result<std::shared_ptr<const Session>> Acquire(const std::string& name);

  bool Contains(const std::string& name) const;
  std::vector<std::string> ListSeries() const;

  /// Current epoch of `name` (NotFound if unregistered).
  Result<uint64_t> SeriesEpoch(const std::string& name) const;

  /// Committed length of `name` in points (NotFound if unregistered).
  /// Cheaper than Acquire for directory-style listings: no session open.
  Result<uint64_t> SeriesLength(const std::string& name) const;

  /// What crash recovery repaired when this catalog was opened.
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// Optional sink for ingest metrics (points appended, batches
  /// committed, epochs installed/retired, commit breakdowns). Also
  /// attaches the instrumented store's op stats and the event journal's
  /// counters to the registry, so one Snapshot() covers the whole write
  /// path. Call before serving traffic; the registry must outlive the
  /// catalog's write-path use.
  void SetStatsRegistry(StatsRegistry* stats);

  /// The instrumented store's op-stats sink; nullptr when
  /// Options::instrument_storage is off.
  std::shared_ptr<KvStoreStats> storage_stats() const {
    return instrumented_ != nullptr ? instrumented_->stats() : nullptr;
  }

  /// The event journal this catalog emits into (Options::event_log).
  EventLog* event_log() const { return options_.event_log; }

  /// Live MVCC gauges: epochs, generations, pinned snapshots, resident
  /// footprint, eviction and recovery totals, plus the backend's own
  /// gauges. Safe from any thread.
  CatalogGauges Gauges() const;

  // ---- Cache introspection (for tests and stats).

  size_t cached_sessions() const;
  uint64_t cached_bytes() const;
  /// Superseded generations still pinned by in-flight readers.
  size_t retired_sessions() const;
  uint64_t retired_bytes() const;
  /// Resident bytes of the per-series incremental ingest state.
  uint64_t ingest_state_bytes() const;

 private:
  /// Refcounted cleanup token for one key namespace. An epoch handle's
  /// refs count live Session objects; a data-generation handle's refs
  /// count the (unpurged) epoch handles whose headers redirect into it —
  /// each epoch handle points at its data generation through `parent` and
  /// releases that reference when the epoch itself is purged. A
  /// namespace's keys are range-deleted when it has been retired AND its
  /// last reference died — whichever happens second — so shared data rows
  /// outlive every epoch that can still reach them.
  struct NsHandle {
    KvStore* store = nullptr;
    /// Keeps the instrumented wrapper behind `store` alive for purges
    /// that run after the catalog is gone (a pinned Session's release).
    std::shared_ptr<KvStore> keepalive;
    std::shared_ptr<std::mutex> write_mu;  // serializes all store writes
    std::string prefix;  // "series/<name>/e<N>/" or "series/<name>/d<G>/"
    std::shared_ptr<NsHandle> parent;  // data generation; null for data

    std::mutex mu;
    int refs = 0;
    bool retired = false;  // superseded (or series dropped)
    bool purged = false;
  };

  enum class CommitKind { kCreate, kAppend, kReplace };

  struct DirEntry {
    Session::Options layout;
    uint64_t epoch = 0;
    uint64_t length = 0;   // committed points (epoch header's length)
    std::string data_ns;   // shared chunk namespace the epoch reads
  };

  struct Entry {
    std::shared_ptr<const Session> session;
    uint64_t bytes = 0;
    uint64_t last_used = 0;  // LRU tick
  };

  /// A superseded generation, tracked until its readers finish so the
  /// memory budget sees both generations.
  struct RetiredEntry {
    std::weak_ptr<const Session> session;
    uint64_t bytes = 0;
  };

  static std::string SeriesNs(const std::string& name, uint64_t epoch) {
    return "series/" + name + "/e" + std::to_string(epoch) + "/";
  }
  static std::string DataGenNs(const std::string& name, uint64_t gen) {
    return "series/" + name + "/d" + std::to_string(gen) + "/";
  }
  static std::string DirectoryKey(const std::string& name) {
    return "catalog/" + name;
  }
  static std::string JournalKey(const std::string& name) {
    return "journal/" + name;
  }

  /// Range-deletes `handle`'s keys (under the shared write lock).
  static void PurgeNs(const std::shared_ptr<NsHandle>& handle);

  /// Drops one reference; if the handle is retired and this was the last
  /// reference, purges its keys and releases the parent chain.
  static void ReleaseNs(std::shared_ptr<NsHandle> handle);

  /// Marks `handle` retired; purges immediately (and releases the parent
  /// chain) if no references remain. Must not be called under mu_.
  static void RetireNs(const std::shared_ptr<NsHandle>& handle);

  /// Adds one reference (a new epoch sharing a data generation).
  static void AddNsRef(const std::shared_ptr<NsHandle>& handle);

  /// Wraps a freshly opened session so its destruction participates in
  /// `handle`'s retire-and-purge protocol.
  static std::shared_ptr<const Session> WrapSession(
      std::shared_ptr<NsHandle> handle, std::unique_ptr<Session> session);

  /// Builds the next epoch from `ingestor` under the commit journal,
  /// flips the directory row and installs the session, retiring `name`'s
  /// previous epoch (and, for kReplace, its data generation). Caller must
  /// hold ingest_mu_. `appended_points` is for stats only.
  Status CommitEpochLocked(const std::string& name,
                           const SeriesIngestor& ingestor, CommitKind kind,
                           uint64_t appended_points);

  // ---- Recovery at open (constructor only; no concurrency yet). ----

  /// Replays every journal/<name> intent record: rolls the commit back or
  /// forward depending on whether the directory flip became durable.
  void RecoverJournals();
  /// Range-deletes series/<name>/ child namespaces that the directory
  /// does not reference (run after RecoverJournals, which may have
  /// restored or removed directory rows' targets).
  void SweepOrphans();

  /// Caches `session` for `name` and evicts LRU entries over budget.
  /// Returns the cached pointer. Caller must hold mu_.
  std::shared_ptr<const Session> CacheLocked(
      const std::string& name, std::shared_ptr<const Session> session);

  /// Bumps `name`'s LRU tick, re-measures its MemoryBytes (row caches
  /// warm over time) and evicts over budget. Caller must hold mu_.
  std::shared_ptr<const Session> TouchLocked(const std::string& name);

  /// Drops LRU entries (never `protect`) until open + retired bytes fit
  /// the budget. Caller must hold mu_.
  void EvictOverBudgetLocked(const std::string& protect);

  /// Prunes expired retired entries and returns the still-pinned bytes.
  /// Caller must hold mu_.
  uint64_t RetiredBytesLocked() const;

  /// Moves `name`'s open entry (if any) to the retired list. Caller must
  /// hold mu_.
  void RetireOpenEntryLocked(const std::string& name);

  KvStore* store_;
  /// When Options::instrument_storage is on, store_ points at this wrapper
  /// instead of the caller's store; NsHandles hold it as keepalive.
  std::shared_ptr<InstrumentedKvStore> instrumented_;
  Options options_;
  StatsRegistry* stats_ = nullptr;  // set once before traffic; see setter
  RecoveryReport recovery_;        // written by the constructor only

  /// Serializes whole write-path calls (create/append/replace/drop) and
  /// guards ingestors_ / next_epoch_ / stats_.
  mutable std::mutex ingest_mu_;
  /// Serializes raw store writes between ingest commits and retired-epoch
  /// purges (which run on whichever thread drops the last session ref).
  /// shared_ptr so purges stay safe if they outlive the catalog.
  std::shared_ptr<std::mutex> store_write_mu_;
  std::map<std::string, std::unique_ptr<SeriesIngestor>> ingestors_;
  /// Allocates both epoch numbers and data generation numbers; never
  /// reused, even across drops and restarts.
  uint64_t next_epoch_ = 0;

  mutable std::mutex mu_;
  std::map<std::string, DirEntry> directory_;  // registered series
  std::map<std::string, std::shared_ptr<NsHandle>> handles_;       // epoch
  std::map<std::string, std::shared_ptr<NsHandle>> data_handles_;  // d<G>
  std::map<std::string, Entry> open_;
  mutable std::vector<RetiredEntry> retired_;
  uint64_t open_bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t evicted_ = 0;  // sessions dropped by the memory budget
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_CATALOG_H_
