// QueryService: the concurrent front door of the engine.
//
// N independent requests — any of the five QueryTypes, ε-threshold or
// top-k — are executed on a fixed-size worker pool against the Catalog's
// shared immutable sessions. Submission is future-based and never blocks:
// a full queue sheds load with ResourceExhausted, and a request whose
// deadline passes while it waits in the queue is answered with
// DeadlineExceeded instead of burning a worker. Per-series QPS, latency
// percentiles and aggregated MatchStats are collected in a StatsRegistry.
#ifndef KVMATCH_SERVICE_QUERY_SERVICE_H_
#define KVMATCH_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "match/top_k.h"
#include "service/catalog.h"
#include "service/service_stats.h"
#include "service/thread_pool.h"

namespace kvmatch {

struct QueryRequest {
  std::string series;         // catalog name to query
  std::vector<double> query;  // Q, |Q| >= wu
  QueryParams params;
  /// 0 → ε-match with params.epsilon; > 0 → best-k search (params.epsilon
  /// ignored, ε expands internally).
  size_t top_k = 0;
  TopKOptions topk_options;
  /// Wall-clock budget from submission; 0 disables. A request whose
  /// budget is already spent at submission, or still queued when it
  /// expires, is failed with DeadlineExceeded without executing. A
  /// negative budget counts as already spent.
  double timeout_ms = 0.0;
};

struct QueryResponse {
  Status status = Status::OK();
  std::vector<MatchResult> matches;
  MatchStats stats;
  /// Submission → completion, including queue wait.
  double latency_ms = 0.0;
};

class QueryService {
 public:
  struct Options {
    size_t num_threads = 0;   // 0 → hardware_concurrency
    size_t max_queue = 1024;  // pending requests before load shedding
  };

  /// `catalog` must outlive the service.
  QueryService(Catalog* catalog, Options options);
  explicit QueryService(Catalog* catalog);

  /// Destruction drains: every submitted request's future is fulfilled.
  ~QueryService() = default;

  /// Enqueues one request. The returned future is always fulfilled —
  /// with matches, or with a non-OK status (NotFound for unknown series,
  /// ResourceExhausted when shedding, DeadlineExceeded on timeout).
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Enqueues a batch; futures are index-aligned with `requests`.
  std::vector<std::future<QueryResponse>> SubmitBatch(
      std::vector<QueryRequest> requests);

  /// Like Submit, but delivers the response through `done` instead of a
  /// future — the hook the network server uses to stream responses back
  /// out of order as they complete. `done` is called exactly once: on a
  /// worker thread after execution, or inline on the submitting thread
  /// when the request is shed (queue full) or its deadline is already
  /// spent. It must not block for long and must not call back into
  /// Submit* (a worker thread would deadlock against a full queue).
  void SubmitWithCallback(QueryRequest request,
                          std::function<void(QueryResponse)> done);

  ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// The live registry, for front-ends (e.g. the TCP server) that record
  /// their own gauges — connection counts, protocol errors — alongside
  /// the query metrics.
  StatsRegistry* stats_registry() { return &stats_; }

  size_t num_threads() const { return pool_.num_threads(); }
  size_t QueueDepth() const { return pool_.QueueDepth(); }

 private:
  QueryResponse Execute(const QueryRequest& request,
                        std::chrono::steady_clock::time_point enqueued,
                        std::chrono::steady_clock::time_point deadline);

  Catalog* catalog_;
  StatsRegistry stats_;
  ThreadPool pool_;  // last member: workers stop before the rest tears down
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_QUERY_SERVICE_H_
