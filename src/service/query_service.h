// QueryService: the concurrent front door of the engine.
//
// N independent requests — any of the five QueryTypes, ε-threshold or
// top-k — are executed on a fixed-size worker pool against the Catalog's
// shared immutable sessions. Submission is future-based and never blocks:
// a full queue sheds load with ResourceExhausted, and a request whose
// deadline passes while it waits in the queue is answered with
// DeadlineExceeded instead of burning a worker.
//
// Execution is cooperative (match/executor.h): a worker checks the
// request's cancellation token and deadline at every phase-1 window probe
// and every phase-2 verify slice, so Cancel(request_id) — or a deadline
// expiring mid-flight — stops a running 100M-point scan within one slice
// and answers Cancelled / DeadlineExceeded carrying the partial stats
// accumulated up to the abort.
//
// Large verifications are also parallel *within* one query: the worker
// that owns a request fans its verify slices out to idle pool workers
// (claiming slices itself too, so progress never depends on idle
// capacity) and merges the per-slice results back in offset order.
//
// Per-series QPS, latency percentiles and aggregated MatchStats are
// collected in a StatsRegistry, alongside an in-flight gauge and
// cancelled / deadline-aborted counters.
#ifndef KVMATCH_SERVICE_QUERY_SERVICE_H_
#define KVMATCH_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "match/exec_context.h"
#include "match/executor.h"
#include "match/top_k.h"
#include "service/catalog.h"
#include "service/service_stats.h"
#include "service/thread_pool.h"
#include "service/trace.h"

namespace kvmatch {

struct QueryRequest {
  std::string series;         // catalog name to query
  std::vector<double> query;  // Q, |Q| >= wu
  QueryParams params;
  /// 0 → ε-match with params.epsilon; > 0 → best-k search (params.epsilon
  /// ignored, ε expands internally).
  size_t top_k = 0;
  TopKOptions topk_options;
  /// Wall-clock budget from submission; 0 disables. A request whose
  /// budget is already spent at submission, or still queued when it
  /// expires, is failed with DeadlineExceeded without executing; one that
  /// expires while running is aborted at the next probe/slice checkpoint.
  /// A negative budget counts as already spent.
  double timeout_ms = 0.0;
  /// Optional caller-owned cancellation token: Cancel() it from any
  /// thread to abort this request (the network server holds one per
  /// in-flight wire query). When null the service still allocates an
  /// internal token so Cancel(request_id) always works.
  std::shared_ptr<CancelToken> cancel;
  /// Collect a per-stage QueryTrace (queue wait, probe, verify slices)
  /// into QueryResponse::trace. Off by default: the untraced path costs
  /// one branch per hook.
  bool collect_trace = false;
  /// Streaming hook for ε-threshold queries: when set, each verified
  /// slice's matches are delivered in offset order (non-empty spans, on a
  /// worker thread, strictly before `done`) as the slice completes, and
  /// QueryResponse::matches arrives empty on success — the network server
  /// uses this to overlap verification with transfer. Ignored for top-k
  /// requests (a global heap cannot emit prefixes early). Must not block
  /// for long; it is called while later slices are still verifying.
  QueryExecutor::MatchSink on_partial;
};

struct QueryResponse {
  Status status = Status::OK();
  std::vector<MatchResult> matches;
  /// On Cancelled / DeadlineExceeded aborts these are the *partial*
  /// counters accumulated before the checkpoint that stopped the run.
  MatchStats stats;
  /// Submission → completion, including queue wait.
  double latency_ms = 0.0;
  /// Stage spans, present iff the request set collect_trace. The trace
  /// origin is the submission instant, so span start offsets line up with
  /// latency_ms. shared_ptr: the server appends a serialize span after
  /// the response has been handed to the completion callback.
  std::shared_ptr<QueryTrace> trace;
};

class QueryService {
 public:
  struct Options {
    size_t num_threads = 0;   // 0 → hardware_concurrency
    size_t max_queue = 1024;  // pending requests before load shedding
    /// Phase-2 decomposition granularity: candidate positions per verify
    /// slice (0 → one slice, i.e. no mid-phase-2 checkpoints).
    size_t verify_slice_positions = QueryExecutor::kDefaultSlicePositions;
    /// Fan one request's verify slices across idle pool workers. Helpers
    /// are opportunistic: with no idle capacity the owning worker simply
    /// verifies every slice itself.
    bool parallel_verify = true;
  };

  /// `catalog` must outlive the service.
  QueryService(Catalog* catalog, Options options);
  explicit QueryService(Catalog* catalog);

  /// Destruction drains: every submitted request's future is fulfilled.
  ~QueryService() = default;

  /// Enqueues one request. The returned future is always fulfilled —
  /// with matches, or with a non-OK status (NotFound for unknown series,
  /// ResourceExhausted when shedding, DeadlineExceeded on timeout,
  /// Cancelled after a Cancel).
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Enqueues a batch; futures are index-aligned with `requests`.
  std::vector<std::future<QueryResponse>> SubmitBatch(
      std::vector<QueryRequest> requests);

  /// Like Submit, but delivers the response through `done` instead of a
  /// future — the hook the network server uses to stream responses back
  /// out of order as they complete. `done` is called exactly once: on a
  /// worker thread after execution, or inline on the submitting thread
  /// when the request is shed (queue full) or its deadline is already
  /// spent. It must not block for long and must not call back into
  /// Submit* (a worker thread would deadlock against a full queue).
  ///
  /// Returns the service-assigned request id, valid for Cancel() until
  /// `done` runs. Inline-failed submissions return an id that Cancel()
  /// reports as NotFound.
  uint64_t SubmitWithCallback(QueryRequest request,
                              std::function<void(QueryResponse)> done);

  /// Aborts the identified request: still-queued requests are answered
  /// Cancelled at dequeue, running ones stop at their next probe/slice
  /// checkpoint. NotFound once the request has been answered (or for an
  /// id this service never issued).
  Status Cancel(uint64_t request_id);

  /// Cancels every in-flight request (graceful-shutdown path).
  void CancelAll();

  /// Accepted requests not yet answered (the in-flight gauge).
  size_t InFlight() const;

  /// Registry snapshot plus the pool's live queue-depth / busy-worker
  /// gauges (the registry does not own the pool) and the catalog's MVCC /
  /// storage gauges.
  ServiceStatsSnapshot Stats() const {
    ServiceStatsSnapshot snap = stats_.Snapshot();
    snap.queue_depth = pool_.QueueDepth();
    snap.workers_busy = pool_.NumBusy();
    snap.workers_total = pool_.num_threads();
    snap.catalog = catalog_->Gauges();
    return snap;
  }
  void ResetStats() { stats_.Reset(); }

  /// The live registry, for front-ends (e.g. the TCP server) that record
  /// their own gauges — connection counts, protocol errors — alongside
  /// the query metrics.
  StatsRegistry* stats_registry() { return &stats_; }

  size_t num_threads() const { return pool_.num_threads(); }
  size_t QueueDepth() const { return pool_.QueueDepth(); }

 private:
  QueryResponse Execute(const QueryRequest& request,
                        const std::shared_ptr<CancelToken>& token,
                        std::chrono::steady_clock::time_point enqueued,
                        std::chrono::steady_clock::time_point deadline);

  /// Phase 2 of `executor` with slices fanned across idle workers; the
  /// calling worker claims slices too. Results land in offset order.
  /// When `sink` is non-null, completed slices are flushed to it in
  /// offset order as soon as every earlier slice has finished, and
  /// `*matches` stays empty.
  Status ParallelVerify(const std::shared_ptr<const Session>& session,
                        QueryExecutor* executor, const ExecContext& ctx,
                        std::vector<MatchResult>* matches, MatchStats* stats,
                        const QueryExecutor::MatchSink* sink = nullptr);

  void Unregister(uint64_t request_id);

  Catalog* catalog_;
  Options options_;
  StatsRegistry stats_;

  mutable std::mutex inflight_mu_;
  uint64_t next_request_id_ = 1;                           // guarded ↑
  std::map<uint64_t, std::shared_ptr<CancelToken>> inflight_;  // guarded ↑

  ThreadPool pool_;  // last member: workers stop before the rest tears down
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_QUERY_SERVICE_H_
