// Per-request query tracing: timestamped spans for every stage of the
// two-phase pipeline (queue wait, phase-1 probe, each verify slice,
// result serialization), collected only when a request asks for it.
//
// A QueryTrace is owned by the QueryService for the lifetime of one
// request and referenced (as a nullable pointer on ExecContext) from the
// executor's hot loops — when tracing is off the hook is a single null
// check. Span start/end times are expressed in milliseconds relative to
// the trace origin (normally the moment the request was enqueued), so a
// trace serialized over the wire is meaningful without clock agreement
// between client and server.
//
// Exporters: TraceToChromeJson() produces a chrome://tracing /
// ui.perfetto.dev document; TraceToJsonLine() produces the one-line JSON
// used by the server's slow-query log; ComputeStageBreakdown() collapses
// the spans into queue/probe/verify/serialize totals for CLI display.
#ifndef KVMATCH_SERVICE_TRACE_H_
#define KVMATCH_SERVICE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace kvmatch {

// Canonical span names. Everything downstream (slow-query log parsing,
// the CLI breakdown, tests) keys off these strings.
inline constexpr const char kSpanQueue[] = "queue";
inline constexpr const char kSpanProbe[] = "probe";
inline constexpr const char kSpanVerify[] = "verify";
inline constexpr const char kSpanSerialize[] = "serialize";

struct TraceSpan {
  std::string name;
  double start_ms = 0.0;  // relative to the trace origin
  double dur_ms = 0.0;
  uint64_t worker = 0;  // dense per-trace id; slices from different
                        // threads get different ids
  std::vector<std::pair<std::string, uint64_t>> args;
};

class QueryTrace {
 public:
  using Clock = std::chrono::steady_clock;

  QueryTrace() : origin_(Clock::now()) {}
  explicit QueryTrace(Clock::time_point origin) : origin_(origin) {}

  Clock::time_point origin() const { return origin_; }

  /// Record a span covering [t0, t1]. Thread-safe: verify slices report
  /// concurrently from pool workers. The calling thread is mapped to a
  /// dense worker id (0, 1, ...) in first-report order.
  void AddSpan(const char* name, Clock::time_point t0, Clock::time_point t1,
               std::vector<std::pair<std::string, uint64_t>> args = {});

  /// Append a fully-formed span (wire decode, tests).
  void AddSpanAt(TraceSpan span);

  /// Spans sorted by start time (ties broken by insertion order).
  std::vector<TraceSpan> spans() const;

  double MsSinceOrigin(Clock::time_point t) const {
    return std::chrono::duration<double, std::milli>(t - origin_).count();
  }

 private:
  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<std::pair<std::thread::id, uint64_t>> workers_;
};

/// Aggregate per-stage wall time. Verify is the union of the (possibly
/// overlapping) slice spans, not their sum, so under parallel verify the
/// stages still add up to roughly the request latency.
struct StageBreakdown {
  double queue_ms = 0.0;
  double probe_ms = 0.0;
  double verify_ms = 0.0;
  double serialize_ms = 0.0;

  double TotalMs() const {
    return queue_ms + probe_ms + verify_ms + serialize_ms;
  }
};

StageBreakdown ComputeStageBreakdown(const QueryTrace& trace);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
/// Defined in common/event_log.cc (the event journal shares it).
std::string JsonEscape(const std::string& s);

/// chrome://tracing document: {"traceEvents":[...]} with complete ("X")
/// events, µs timestamps, tid = the span's worker id.
std::string TraceToChromeJson(const QueryTrace& trace);

/// Append this trace's events (without the enclosing document) to `out`,
/// using `pid` to separate multiple queries in one combined document.
void AppendChromeTraceEvents(const QueryTrace& trace, uint64_t pid,
                             std::string* out);

/// One-line JSON for the slow-query log:
/// {"slow_query":true,"series":"...","status":"...","latency_ms":...,
///  "spans":[{"name":...,"start_ms":...,"dur_ms":...,"worker":...,
///            "args":{...}},...]}
std::string TraceToJsonLine(const std::string& series,
                            const std::string& status, double latency_ms,
                            const QueryTrace& trace);

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_TRACE_H_
