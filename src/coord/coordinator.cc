#include "coord/coordinator.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "match/top_k.h"
#include "service/trace.h"

namespace kvmatch {
namespace coord {

namespace {

size_t DefaultFanoutThreads(size_t shards) {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return std::max<size_t>(1, std::min(shards, hw));
}

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Coordinator::Coordinator(ShardMap map, Options options)
    : map_(std::move(map)),
      options_(options),
      pool_(options.fanout_threads > 0
                ? options.fanout_threads
                : DefaultFanoutThreads(map_.num_shards()),
            /*max_queue=*/64) {
  shards_.reserve(map_.num_shards());
  for (uint32_t s = 0; s < map_.num_shards(); ++s) {
    ShardClient::Options client_options = options_.client;
    if (options_.verify_shard_identity) {
      client_options.expect_shard_id = s;
      if (client_options.expect_fingerprint == 0) {
        client_options.expect_fingerprint = map_.Fingerprint();
      }
    } else {
      client_options.expect_fingerprint = 0;
    }
    shards_.push_back(
        std::make_unique<ShardClient>(map_.endpoint(s), client_options));
  }
}

void Coordinator::FanOut(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
  };
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto sync = std::make_shared<Sync>();
  const size_t total = tasks.size();
  auto* tasks_ptr = &tasks;
  // A helper that wakes after the owner already finished everything
  // claims an index >= total and exits without touching the (by then
  // dead) task vector — only the claim cursor and sync block, which the
  // shared_ptrs keep alive.
  auto worker = [next, sync, tasks_ptr, total] {
    for (;;) {
      const size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      (*tasks_ptr)[i]();
      std::lock_guard<std::mutex> lock(sync->mu);
      if (++sync->done == total) sync->cv.notify_all();
    }
  };
  // Helpers are best-effort: a full pool sheds them and the owner's own
  // claim loop below still finishes every task — degraded to serial, but
  // never deadlocked on pool capacity.
  for (size_t h = 1; h < total; ++h) (void)pool_.Submit(worker);
  worker();
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done == total; });
}

QueryResponse Coordinator::ExecuteExact(
    const net::WireQueryRequest& request,
    const std::shared_ptr<CancelToken>& cancel) {
  const uint32_t owner = map_.OwnerOf(request.request.series);
  auto batch = shards_[owner]->QueryBatch(std::span(&request, 1), cancel,
                                          request.request.timeout_ms);
  if (!batch.ok()) {
    QueryResponse response;
    response.status = batch.status();
    return response;
  }
  return std::move(batch->front());
}

net::FederatedResponse Coordinator::ExecutePattern(
    const net::WireQueryRequest& request,
    const std::shared_ptr<CancelToken>& cancel) {
  const auto t0 = std::chrono::steady_clock::now();
  net::FederatedResponse fed;
  fed.shards_total = static_cast<uint32_t>(map_.num_shards());
  if (request.by_reference) {
    fed.status = Status::InvalidArgument(
        "pattern queries require literal query values: a by-reference "
        "query has no single owner shard to resolve the reference");
    fed.latency_ms = MsBetween(t0, std::chrono::steady_clock::now());
    return fed;
  }
  std::shared_ptr<QueryTrace> trace;
  if (request.request.collect_trace) {
    trace = std::make_shared<QueryTrace>(t0);
  }

  struct ShardOutcome {
    Status status = Status::OK();
    std::vector<net::FederatedSeriesMatches> groups;
    MatchStats stats;
    std::chrono::steady_clock::time_point start{}, end{};
  };
  std::vector<ShardOutcome> outcomes(map_.num_shards());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(map_.num_shards());
  for (uint32_t s = 0; s < map_.num_shards(); ++s) {
    tasks.push_back([this, s, &request, &cancel, &outcomes, trace, t0] {
      ShardOutcome& out = outcomes[s];
      out.start = std::chrono::steady_clock::now();
      // Plan against this shard's own directory: only series it owns
      // under the current map (a leftover replica from a reshard must
      // not produce the same series from two shards).
      auto listing = shards_[s]->ListSeries();
      if (!listing.ok()) {
        out.status = listing.status();
        out.end = std::chrono::steady_clock::now();
        return;
      }
      std::vector<std::string> names;
      for (const auto& info : *listing) {
        if (GlobMatch(request.request.series, info.name) &&
            map_.OwnerOf(info.name) == s) {
          names.push_back(info.name);
        }
      }
      std::sort(names.begin(), names.end());
      if (names.empty()) {
        out.end = std::chrono::steady_clock::now();
        return;
      }
      // The budget that is left after planning is what the shard gets.
      const double remaining =
          net::RemainingBudgetMs(request.request.timeout_ms, t0);
      if (request.request.timeout_ms > 0.0 && remaining <= 0.0) {
        out.status = Status::DeadlineExceeded(
            "deadline spent before shard " + std::to_string(s) +
            " was queried");
        out.end = std::chrono::steady_clock::now();
        return;
      }
      std::vector<net::WireQueryRequest> batch;
      batch.reserve(names.size());
      for (const auto& name : names) {
        net::WireQueryRequest sub = request;
        sub.by_reference = false;
        sub.request.series = name;
        sub.request.timeout_ms = remaining;
        batch.push_back(std::move(sub));
      }
      auto answers = shards_[s]->QueryBatch(batch, cancel, remaining);
      if (!answers.ok()) {
        out.status = answers.status();
        out.end = std::chrono::steady_clock::now();
        return;
      }
      for (size_t i = 0; i < answers->size(); ++i) {
        QueryResponse& answer = (*answers)[i];
        out.stats.Add(answer.stats);
        if (trace != nullptr && answer.trace != nullptr) {
          // Shard spans are re-based onto the coordinator timeline at
          // this batch's start and namespaced per shard.
          const double base = MsBetween(t0, out.start);
          for (TraceSpan span : answer.trace->spans()) {
            span.name =
                "shard" + std::to_string(s) + "/" + names[i] + "/" +
                span.name;
            span.start_ms += base;
            trace->AddSpanAt(std::move(span));
          }
        }
        if (!answer.status.ok()) {
          // One failed sub-query (cancelled, deadline, shard-side error)
          // degrades this shard to partial; the successful groups are
          // still delivered.
          if (out.status.ok()) out.status = answer.status;
          continue;
        }
        out.groups.push_back(net::FederatedSeriesMatches{
            names[i], std::move(answer.matches)});
      }
      out.end = std::chrono::steady_clock::now();
    });
  }
  FanOut(tasks);

  const auto merge_t0 = std::chrono::steady_clock::now();
  std::vector<net::FederatedSeriesMatches> groups;
  for (uint32_t s = 0; s < outcomes.size(); ++s) {
    ShardOutcome& out = outcomes[s];
    if (out.status.ok()) {
      fed.shards_ok += 1;
    } else {
      fed.shard_errors.emplace_back(s, out.status);
    }
    for (auto& g : out.groups) groups.push_back(std::move(g));
    fed.stats.Add(out.stats);
    if (trace != nullptr) {
      TraceSpan span;
      span.name = "shard" + std::to_string(s);
      span.start_ms = MsBetween(t0, out.start);
      span.dur_ms = MsBetween(out.start, out.end);
      span.worker = s;
      trace->AddSpanAt(std::move(span));
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const net::FederatedSeriesMatches& a,
               const net::FederatedSeriesMatches& b) {
              return a.series < b.series;
            });
  if (request.request.top_k > 0 && !groups.empty()) {
    // Global top-k: every shard over-delivered its local best k; one
    // bounded heap under (distance, series, offset) picks the true
    // global winners, then the flat ranking folds back into per-series
    // groups (name-sorted; within a series the heap's output order is
    // already (distance, offset)).
    std::vector<std::vector<SeriesMatch>> sources;
    sources.reserve(groups.size());
    for (auto& g : groups) {
      std::vector<SeriesMatch> src;
      src.reserve(g.matches.size());
      for (const MatchResult& m : g.matches) {
        src.push_back(SeriesMatch{g.series, m});
      }
      sources.push_back(std::move(src));
    }
    std::map<std::string, std::vector<MatchResult>> regrouped;
    for (SeriesMatch& winner :
         MergeTopK(std::move(sources), request.request.top_k)) {
      regrouped[winner.series].push_back(winner.match);
    }
    groups.clear();
    for (auto& [series, matches] : regrouped) {
      groups.push_back(
          net::FederatedSeriesMatches{series, std::move(matches)});
    }
  }
  fed.groups = std::move(groups);
  if (fed.shards_ok == 0 && !fed.shard_errors.empty()) {
    fed.status = fed.shard_errors.front().second;
  }
  const auto done = std::chrono::steady_clock::now();
  if (trace != nullptr) {
    trace->AddSpan("merge", merge_t0, done);
    fed.trace = trace;
  }
  fed.latency_ms = MsBetween(t0, done);
  return fed;
}

Result<std::vector<net::SeriesInfo>> Coordinator::ListAll() {
  // pair.first: whether the kept copy came from its owner shard.
  std::map<std::string, std::pair<bool, net::SeriesInfo>> best;
  Status first_error = Status::OK();
  size_t reachable = 0;
  for (uint32_t s = 0; s < map_.num_shards(); ++s) {
    auto listing = shards_[s]->ListSeries();
    if (!listing.ok()) {
      if (first_error.ok()) first_error = listing.status();
      continue;
    }
    ++reachable;
    for (auto& info : *listing) {
      const bool from_owner = map_.OwnerOf(info.name) == s;
      auto it = best.find(info.name);
      if (it == best.end()) {
        // Copy the key before moving the value: the moved-from name must
        // not be what the map is keyed on.
        std::string key = info.name;
        best.emplace(std::move(key),
                     std::make_pair(from_owner, std::move(info)));
      } else if (from_owner && !it->second.first) {
        it->second = {from_owner, std::move(info)};
      }
    }
  }
  if (reachable == 0 && !first_error.ok()) return first_error;
  std::vector<net::SeriesInfo> out;
  out.reserve(best.size());
  for (auto& [name, kept] : best) out.push_back(std::move(kept.second));
  return out;
}

Result<net::IngestAck> Coordinator::CreateSeries(
    const std::string& name, std::span<const double> values) {
  return shards_[map_.OwnerOf(name)]->CreateSeries(name, values);
}

Result<net::IngestAck> Coordinator::AppendSeries(
    const std::string& name, std::span<const double> values) {
  return shards_[map_.OwnerOf(name)]->AppendSeries(name, values);
}

Status Coordinator::DropSeries(const std::string& name) {
  return shards_[map_.OwnerOf(name)]->DropSeries(name);
}

}  // namespace coord
}  // namespace kvmatch
