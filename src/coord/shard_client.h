// One coordinator-side connection to one shard: a net::Client wrapped
// with reconnect/backoff, cluster-identity verification, and a batched
// scatter primitive whose waits are bounded so a cancel or a dead shard
// never hangs the coordinator.
//
// Thread model: operations are serialized under one mutex (the
// underlying Client is single-threaded by contract). The coordinator
// fans out across SHARDS concurrently — one ShardClient per shard, each
// used by at most one fan-out task at a time — and pipelines WITHIN a
// shard by batching all of that shard's sub-queries into one
// QueryBatch call.
#ifndef KVMATCH_COORD_SHARD_CLIENT_H_
#define KVMATCH_COORD_SHARD_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "coord/shard_map.h"
#include "net/client.h"
#include "net/protocol.h"

namespace kvmatch {
namespace coord {

class ShardClient {
 public:
  struct Options {
    /// Upper bound on any one remote call (dial, batch, list). A shard
    /// that goes silent longer than this yields DeadlineExceeded; its
    /// outstanding requests are Forgotten so the connection survives.
    double call_timeout_ms = 10'000.0;
    /// Reconnect backoff after a failed dial: doubles from initial to
    /// max; a successful dial resets it.
    double backoff_initial_ms = 100.0;
    double backoff_max_ms = 3'200.0;
    /// When nonzero, the shard's kShardInfo answer must carry exactly
    /// this map fingerprint and shard id, or the connection is refused
    /// (a shard started under a different topology must not be routed
    /// to — series would silently come back missing).
    uint64_t expect_fingerprint = 0;
    uint32_t expect_shard_id = net::kStandaloneShardId;
  };

  ShardClient(ShardEndpoint endpoint, Options options);

  /// Dials (or reuses) the connection and verifies the shard's identity.
  /// While a dial backoff is pending, fails fast with ResourceExhausted
  /// instead of re-dialing a known-dead endpoint on every query.
  Status EnsureConnected();

  /// Sends every request pipelined on one connection, then collects the
  /// answers in completion order; returns them in REQUEST order. Between
  /// bounded waits the `cancel` token is polled — when it fires, a
  /// kCancel is fanned to every outstanding request id on this shard
  /// (exactly once) and collection continues until the shards' own
  /// Cancelled answers arrive. A shard silent past call_timeout_ms (or
  /// `deadline_ms`, when smaller) fails the batch with DeadlineExceeded.
  /// A per-request error (kError) is NOT a batch failure: it comes back
  /// as that slot's response.status.
  Result<std::vector<QueryResponse>> QueryBatch(
      std::span<const net::WireQueryRequest> requests,
      const std::shared_ptr<CancelToken>& cancel, double deadline_ms = 0.0);

  Result<std::vector<net::SeriesInfo>> ListSeries();
  Result<net::ShardInfo> GetShardInfo();
  Result<net::IngestAck> CreateSeries(const std::string& name,
                                      std::span<const double> values);
  Result<net::IngestAck> AppendSeries(const std::string& name,
                                      std::span<const double> values);
  Status DropSeries(const std::string& name);

  const ShardEndpoint& endpoint() const { return endpoint_; }

  /// Connection liveness (observability / tests).
  bool connected() const;

 private:
  /// Requires mu_ held.
  Status EnsureConnectedLocked();
  /// Drops the connection after a transport failure and arms the dial
  /// backoff. Requires mu_ held.
  void DropConnectionLocked(const Status& why);

  const ShardEndpoint endpoint_;
  const Options options_;

  mutable std::mutex mu_;
  std::unique_ptr<net::Client> client_;
  double backoff_ms_ = 0.0;  // 0 → next dial is immediate
  std::chrono::steady_clock::time_point next_dial_{};
  Status last_dial_error_ = Status::OK();
};

}  // namespace coord
}  // namespace kvmatch

#endif  // KVMATCH_COORD_SHARD_CLIENT_H_
