#include "coord/shard_client.h"

#include <algorithm>
#include <map>
#include <utility>

namespace kvmatch {
namespace coord {

namespace {

/// Cancel-poll granularity inside QueryBatch: each bounded wait is at
/// most this long, so a fired token turns into kCancel frames on the
/// wire within one slice.
constexpr double kCancelPollMs = 20.0;

/// Statuses after which the connection's framing can no longer be
/// trusted (or the peer is gone): drop and redial. Typed server answers
/// (InvalidArgument, NotFound, ResourceExhausted, ...) leave the
/// connection healthy.
bool IsTransportFailure(const Status& s) {
  return s.IsIOError() || s.IsCorruption();
}

}  // namespace

ShardClient::ShardClient(ShardEndpoint endpoint, Options options)
    : endpoint_(std::move(endpoint)), options_(options) {}

bool ShardClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return client_ != nullptr;
}

void ShardClient::DropConnectionLocked(const Status& why) {
  client_.reset();
  backoff_ms_ = backoff_ms_ <= 0.0
                    ? options_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2.0, options_.backoff_max_ms);
  next_dial_ =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(backoff_ms_));
  last_dial_error_ = why;
}

Status ShardClient::EnsureConnectedLocked() {
  if (client_ != nullptr) return Status::OK();
  if (std::chrono::steady_clock::now() < next_dial_) {
    return Status::ResourceExhausted(
        "shard " + endpoint_.host + ":" + std::to_string(endpoint_.port) +
        " in dial backoff after: " + last_dial_error_.ToString());
  }
  auto dialed = net::Client::Connect(endpoint_.host, endpoint_.port);
  if (!dialed.ok()) {
    DropConnectionLocked(dialed.status());
    return dialed.status();
  }
  // Identity check before first use: a shard started under a different
  // map (or a standalone server at the right address by accident) is
  // refused — routing against it would silently lose series.
  (*dialed)->set_wait_timeout_ms(options_.call_timeout_ms);
  auto info = (*dialed)->GetShardInfo();
  if (!info.ok()) {
    DropConnectionLocked(info.status());
    return info.status();
  }
  if (options_.expect_fingerprint != 0 &&
      (info->map_fingerprint != options_.expect_fingerprint ||
       info->shard_id != options_.expect_shard_id)) {
    const Status mismatch = Status::InvalidArgument(
        "shard " + endpoint_.host + ":" + std::to_string(endpoint_.port) +
        " identifies as shard " + std::to_string(info->shard_id) +
        " fingerprint " + std::to_string(info->map_fingerprint) +
        ", expected shard " + std::to_string(options_.expect_shard_id) +
        " fingerprint " + std::to_string(options_.expect_fingerprint));
    DropConnectionLocked(mismatch);
    return mismatch;
  }
  (*dialed)->set_wait_timeout_ms(0.0);
  client_ = std::move(*dialed);
  backoff_ms_ = 0.0;
  last_dial_error_ = Status::OK();
  return Status::OK();
}

Status ShardClient::EnsureConnected() {
  std::lock_guard<std::mutex> lock(mu_);
  return EnsureConnectedLocked();
}

Result<std::vector<QueryResponse>> ShardClient::QueryBatch(
    std::span<const net::WireQueryRequest> requests,
    const std::shared_ptr<CancelToken>& cancel, double deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;

  std::map<uint64_t, size_t> slot;  // request id → result index
  for (size_t i = 0; i < requests.size(); ++i) {
    auto id = client_->SendRequest(requests[i]);
    if (!id.ok()) {
      DropConnectionLocked(id.status());
      return id.status();
    }
    slot[*id] = i;
  }

  std::vector<QueryResponse> out(requests.size());
  const auto t0 = std::chrono::steady_clock::now();
  double budget_ms = options_.call_timeout_ms;
  if (deadline_ms > 0.0) budget_ms = std::min(budget_ms, deadline_ms);
  bool cancel_sent = false;
  client_->set_wait_timeout_ms(kCancelPollMs);
  while (!slot.empty()) {
    if (cancel != nullptr && cancel->cancelled() && !cancel_sent) {
      // Fan kCancel to every outstanding sub-query exactly once, then
      // keep collecting: the shards answer Cancelled through the normal
      // response path, which leaves the connection clean for reuse.
      for (const auto& [id, index] : slot) (void)client_->Cancel(id);
      cancel_sent = true;
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed_ms >= budget_ms) {
      // Too slow: abandon the stragglers (their late answers will be
      // discarded on arrival, not parked forever) but keep the
      // connection — a slow shard is not a dead one.
      for (const auto& [id, index] : slot) {
        (void)client_->Cancel(id);
        client_->Forget(id);
      }
      client_->set_wait_timeout_ms(0.0);
      return Status::DeadlineExceeded(
          "shard " + endpoint_.host + ":" + std::to_string(endpoint_.port) +
          " did not answer " + std::to_string(slot.size()) +
          " sub-quer" + (slot.size() == 1 ? "y" : "ies") + " within " +
          std::to_string(budget_ms) + " ms");
    }
    auto answer = client_->WaitAnyResponse();
    if (!answer.ok()) {
      if (answer.status().IsDeadlineExceeded()) continue;  // poll slice
      DropConnectionLocked(answer.status());
      return answer.status();
    }
    const auto it = slot.find(answer->first);
    if (it == slot.end()) continue;  // stale answer from a prior batch
    out[it->second] = std::move(answer->second);
    slot.erase(it);
  }
  client_->set_wait_timeout_ms(0.0);
  return out;
}

Result<std::vector<net::SeriesInfo>> ShardClient::ListSeries() {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;
  client_->set_wait_timeout_ms(options_.call_timeout_ms);
  auto result = client_->ListSeries();
  if (!result.ok() && (IsTransportFailure(result.status()) ||
                       result.status().IsDeadlineExceeded())) {
    // A timed-out round trip leaves an orphan answer in flight with no
    // id to Forget from here; redialing is the simple safe reset.
    DropConnectionLocked(result.status());
    return result.status();
  }
  client_->set_wait_timeout_ms(0.0);
  return result;
}

Result<net::ShardInfo> ShardClient::GetShardInfo() {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;
  client_->set_wait_timeout_ms(options_.call_timeout_ms);
  auto result = client_->GetShardInfo();
  if (!result.ok() && (IsTransportFailure(result.status()) ||
                       result.status().IsDeadlineExceeded())) {
    DropConnectionLocked(result.status());
    return result.status();
  }
  client_->set_wait_timeout_ms(0.0);
  return result;
}

Result<net::IngestAck> ShardClient::CreateSeries(
    const std::string& name, std::span<const double> values) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;
  client_->set_wait_timeout_ms(options_.call_timeout_ms);
  auto result = client_->CreateSeries(name, values);
  if (!result.ok() && (IsTransportFailure(result.status()) ||
                       result.status().IsDeadlineExceeded())) {
    DropConnectionLocked(result.status());
    return result.status();
  }
  client_->set_wait_timeout_ms(0.0);
  return result;
}

Result<net::IngestAck> ShardClient::AppendSeries(
    const std::string& name, std::span<const double> values) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;
  client_->set_wait_timeout_ms(options_.call_timeout_ms);
  auto result = client_->AppendSeries(name, values);
  if (!result.ok() && (IsTransportFailure(result.status()) ||
                       result.status().IsDeadlineExceeded())) {
    DropConnectionLocked(result.status());
    return result.status();
  }
  client_->set_wait_timeout_ms(0.0);
  return result;
}

Status ShardClient::DropSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status st = EnsureConnectedLocked(); !st.ok()) return st;
  client_->set_wait_timeout_ms(options_.call_timeout_ms);
  Status result = client_->DropSeries(name);
  if (!result.ok() && (IsTransportFailure(result) ||
                       result.IsDeadlineExceeded())) {
    DropConnectionLocked(result);
    return result;
  }
  client_->set_wait_timeout_ms(0.0);
  return result;
}

}  // namespace coord
}  // namespace kvmatch
