#include "coord/shard_map.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace kvmatch {
namespace coord {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Result<ShardMap> ShardMap::FromEndpoints(
    std::vector<ShardEndpoint> endpoints) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("shard map needs at least one shard");
  }
  for (const auto& ep : endpoints) {
    if (ep.host.empty() || ep.port <= 0 || ep.port > 65535) {
      return Status::InvalidArgument("shard endpoint " + ep.host + ":" +
                                     std::to_string(ep.port) +
                                     " is not usable");
    }
  }
  ShardMap map;
  map.endpoints_ = std::move(endpoints);
  return map;
}

Result<ShardMap> ShardMap::Parse(std::string_view text) {
  // Ids may appear in any order but must come out dense: the slot
  // vector is grown on demand and every slot must be filled exactly
  // once.
  std::vector<ShardEndpoint> slots;
  std::vector<bool> filled;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string directive, host;
    long long id = -1, port = 0;
    fields >> directive >> id >> host >> port;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (fields.fail() || directive != "shard") {
      return Status::InvalidArgument(
          "shard map: expected 'shard <id> <host> <port>'" + where);
    }
    if (id < 0 || id > 0xFFFF) {
      return Status::InvalidArgument("shard map: shard id " +
                                     std::to_string(id) + " out of range" +
                                     where);
    }
    if (host.empty() || port <= 0 || port > 65535) {
      return Status::InvalidArgument("shard map: bad endpoint" + where);
    }
    const size_t slot = static_cast<size_t>(id);
    if (slot >= slots.size()) {
      slots.resize(slot + 1);
      filled.resize(slot + 1, false);
    }
    if (filled[slot]) {
      return Status::InvalidArgument("shard map: duplicate shard id " +
                                     std::to_string(id) + where);
    }
    slots[slot] = ShardEndpoint{host, static_cast<int>(port)};
    filled[slot] = true;
  }
  if (slots.empty()) {
    return Status::InvalidArgument("shard map: no shards defined");
  }
  for (size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      return Status::InvalidArgument("shard map: shard id " +
                                     std::to_string(i) +
                                     " missing (ids must be dense 0..N-1)");
    }
  }
  return FromEndpoints(std::move(slots));
}

Result<ShardMap> ShardMap::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open shard map " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return Parse(text);
}

std::string ShardMap::Serialize() const {
  std::string out;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    out += "shard " + std::to_string(i) + " " + endpoints_[i].host + " " +
           std::to_string(endpoints_[i].port) + "\n";
  }
  return out;
}

Status ShardMap::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot write shard map " + path);
  }
  const std::string text = Serialize();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (std::fclose(f) != 0 || written != text.size()) {
    return Status::IOError("short write to shard map " + path);
  }
  return Status::OK();
}

uint32_t ShardMap::OwnerOf(std::string_view series) const {
  return static_cast<uint32_t>(Fnv1a64(series) % endpoints_.size());
}

uint64_t ShardMap::Fingerprint() const { return Fnv1a64(Serialize()); }

bool GlobMatch(std::string_view pattern, std::string_view name) {
  // Iterative two-pointer matcher with star backtracking — linear in
  // practice, no recursion to blow on adversarial patterns.
  size_t p = 0, n = 0;
  size_t star = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace coord
}  // namespace kvmatch
