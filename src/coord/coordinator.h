// Scatter-gather query coordinator over a static ShardMap.
//
// Routing: an exact series name goes to its owner shard and the answer
// passes through untouched — a federated single-series query is
// byte-identical to asking that shard directly. A series PATTERN
// ('*'/'?') is planned against the union of the shards' catalogs, fanned
// out as one pipelined batch per owning shard, and merged:
//   - ε-threshold: per-series groups sorted by name, each group's
//     matches in ascending offset order (the executor's slice-concat
//     contract, carried across the wire unchanged);
//   - top-k: one global bounded heap under the total order
//     (distance, series, offset), so the federated answer is
//     deterministic and identical to a single node holding every series.
//
// Failure: a dead, unreachable, or too-slow shard never hangs or fails
// the whole query — it is recorded per shard in the FederatedResponse
// and shards_ok < shards_total marks the result typed-partial.
//
// Cancellation/deadlines: the caller's CancelToken is polled inside
// every shard batch and fans kCancel to each shard's outstanding
// sub-queries; deadline budgets travel as REMAINING milliseconds and
// shrink at every hop.
#ifndef KVMATCH_COORD_COORDINATOR_H_
#define KVMATCH_COORD_COORDINATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "coord/shard_client.h"
#include "coord/shard_map.h"
#include "net/protocol.h"
#include "service/thread_pool.h"

namespace kvmatch {
namespace coord {

class Coordinator {
 public:
  struct Options {
    /// Per-shard-call bound and reconnect backoff (see ShardClient).
    ShardClient::Options client;
    /// Fan-out helpers: tasks beyond what the pool can take run on the
    /// calling thread (owner-claims-work), so a saturated pool degrades
    /// to serial fan-out instead of deadlock. 0 → one per shard,
    /// capped at hardware concurrency.
    size_t fanout_threads = 0;
    /// Verify each shard's kShardInfo identity (shard id + map
    /// fingerprint) on connect. Disable only for in-process clusters
    /// whose shards bind ephemeral ports — their identity cannot be in
    /// the map before they start.
    bool verify_shard_identity = true;
  };

  Coordinator(ShardMap map, Options options);

  /// Exact-series query: forwarded verbatim (by-reference included — the
  /// referenced series lives on the owner) to OwnerOf(series). Transport
  /// or routing failures come back as the response's status, typed.
  QueryResponse ExecuteExact(const net::WireQueryRequest& request,
                             const std::shared_ptr<CancelToken>& cancel);

  /// Pattern query: plan over the shards' catalogs, scatter one batch
  /// per shard, merge per the contract above. Requires literal query
  /// values (by_reference is rejected — a pattern has no single owner to
  /// resolve the reference against).
  net::FederatedResponse ExecutePattern(
      const net::WireQueryRequest& request,
      const std::shared_ptr<CancelToken>& cancel);

  /// Union of every shard's directory, sorted by name. A series listed
  /// by several shards (mid-reshard leftovers) appears once — the
  /// owner's copy wins. Unreachable shards are skipped (best-effort
  /// directory; queries against their series will answer typed errors).
  Result<std::vector<net::SeriesInfo>> ListAll();

  /// Ingest routed to the owner shard.
  Result<net::IngestAck> CreateSeries(const std::string& name,
                                      std::span<const double> values);
  Result<net::IngestAck> AppendSeries(const std::string& name,
                                      std::span<const double> values);
  Status DropSeries(const std::string& name);

  const ShardMap& map() const { return map_; }
  ShardClient* shard(uint32_t id) { return shards_[id].get(); }
  const ShardClient* shard(uint32_t id) const { return shards_[id].get(); }

 private:
  /// Runs every task exactly once and returns when all are done.
  /// Owner-claims-work: this thread claims tasks from the same atomic
  /// cursor as the pool helpers, so completion never depends on pool
  /// capacity (helpers are submitted best-effort and may be shed).
  void FanOut(std::vector<std::function<void()>>& tasks);

  ShardMap map_;
  Options options_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
  ThreadPool pool_;
};

}  // namespace coord
}  // namespace kvmatch

#endif  // KVMATCH_COORD_COORDINATOR_H_
