#include "coord/coord_server.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace kvmatch {
namespace coord {

net::Server::Options CoordServer::WithCoordinatorIdentity(
    net::Server::Options options, const ShardMap& map) {
  options.shard_id = net::kCoordinatorShardId;
  options.num_shards = static_cast<uint32_t>(map.num_shards());
  options.shard_map_fingerprint = map.Fingerprint();
  return options;
}

CoordServer::CoordServer(ShardMap map, CoordOptions options)
    : internal::CoordServerState(),
      net::Server(&this->stats, WithCoordinatorIdentity(
                                    std::move(options.server), map)),
      coord_(std::move(map), options.coord),
      pool_(std::max<size_t>(1, options.num_threads), options.max_queue) {}

CoordServer::~CoordServer() {
  // Stop() here, not in the base destructor: the drain completes every
  // federated task, and those tasks use coord_/pool_, which die with
  // this subclass.
  Stop();
}

std::string CoordServer::StatsText() const {
  std::string out = StatsToText(stats.Snapshot());
  for (uint32_t s = 0; s < coord_.map().num_shards(); ++s) {
    out += "kvmatch_coord_shard_connected{shard=\"" + std::to_string(s) +
           "\"} " + (coord_.shard(s)->connected() ? "1" : "0") + "\n";
  }
  return out;
}

void CoordServer::HandleQuery(
    const std::shared_ptr<Connection>& conn, uint64_t id,
    std::string_view body, std::chrono::steady_clock::time_point received) {
  net::WireQueryRequest wire_request;
  if (Status st = net::DecodeQueryRequestBody(body, &wire_request);
      !st.ok()) {
    registry()->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  // Same booking discipline as the base server: token registered before
  // any work, so a kCancel can never race ahead of its target — and the
  // token is what QueryBatch polls to fan kCancel to every shard.
  auto token = std::make_shared<CancelToken>();
  if (!RegisterRequest(conn, id, token)) {
    registry()->RecordProtocolError();
    SendError(conn, id,
              Status::InvalidArgument("request id " + std::to_string(id) +
                                      " is already in flight"));
    return;
  }
  auto task = [this, conn, id, token, received,
               wire_request = std::move(wire_request)]() mutable {
    registry()->RecordQueryStarted();
    // Re-anchor the deadline budget at this hop: queue wait in the
    // federation pool plus wire time is charged, never granted twice.
    wire_request.request.timeout_ms = net::RemainingBudgetMs(
        wire_request.request.timeout_ms, received);
    const std::string series = wire_request.request.series;
    std::vector<std::string> wires;
    if (IsGlobPattern(series)) {
      if (wire_request.by_reference) {
        net::Frame frame;
        frame.type = net::FrameType::kError;
        frame.request_id = id;
        net::EncodeErrorBody(
            Status::InvalidArgument(
                "pattern queries require literal query values"),
            &frame.body);
        std::string wire;
        net::EncodeFrame(frame, &wire);
        wires.push_back(std::move(wire));
      } else {
        net::FederatedResponse fed =
            coord_.ExecutePattern(wire_request, token);
        registry()->RecordQuery(series, fed.latency_ms, fed.stats,
                                fed.status.ok());
        if (fed.status.IsCancelled()) registry()->RecordCancelled(series);
        net::Frame frame;
        frame.type = net::FrameType::kFederatedResponse;
        frame.request_id = id;
        net::EncodeFederatedResponseBody(fed, &frame.body);
        std::string wire;
        net::EncodeFrame(frame, &wire);
        wires.push_back(std::move(wire));
      }
    } else {
      QueryResponse response = coord_.ExecuteExact(wire_request, token);
      registry()->RecordQuery(series, response.latency_ms, response.stats,
                              response.status.ok());
      if (response.status.IsCancelled()) registry()->RecordCancelled(series);
      // Shared encoder: the federated answer for an exact series is
      // byte-identical to the owner shard's own answer run.
      wires = EncodeResponseRun(id, std::move(response),
                                wire_request.request.collect_trace);
    }
    registry()->RecordQueryFinished();
    CompleteRequest(conn, id, std::move(wires));
  };
  if (Status st = pool_.Submit(std::move(task)); !st.ok()) {
    // Shed load with the booking retired, same contract as the service.
    registry()->RecordRejected();
    QueryResponse shed;
    shed.status = st;
    CompleteRequest(conn, id,
                    EncodeResponseRun(id, std::move(shed), false));
  }
}

void CoordServer::HandleIngest(const std::shared_ptr<Connection>& conn,
                               net::FrameType type, uint64_t id,
                               std::string_view body) {
  net::WireIngestRequest request;
  if (Status st = net::DecodeIngestRequestBody(body, &request); !st.ok()) {
    registry()->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  // The shard round trip blocks on socket I/O (bounded by the client
  // call timeout) — run it on the blocking-work thread so the reactor
  // loop keeps serving every other connection. This connection's frame
  // processing is suspended meanwhile, preserving its pipeline order.
  RunBlocking(conn, [this, conn, type, id,
                     request = std::move(request)]() mutable {
    Status st;
    net::IngestAck ack;
    switch (type) {
      case net::FrameType::kCreateRequest: {
        auto result = coord_.CreateSeries(request.series, request.values);
        st = result.status();
        if (result.ok()) ack = *result;
        break;
      }
      case net::FrameType::kAppendRequest: {
        auto result = coord_.AppendSeries(request.series, request.values);
        st = result.status();
        if (result.ok()) ack = *result;
        break;
      }
      default:
        st = coord_.DropSeries(request.series);
        break;
    }
    if (!st.ok()) {
      SendError(conn, id, st);
      return;
    }
    net::Frame response;
    response.type = net::FrameType::kIngestResponse;
    response.request_id = id;
    net::EncodeIngestResponseBody(ack, &response.body);
    Enqueue(conn, response);
  });
}

void CoordServer::HandleList(const std::shared_ptr<Connection>& conn,
                             uint64_t id) {
  // Fans out a LIST to every shard over the wire: blocking I/O, so off
  // the loop like ingest above.
  RunBlocking(conn, [this, conn, id] {
    auto series = coord_.ListAll();
    if (!series.ok()) {
      SendError(conn, id, series.status());
      return;
    }
    net::Frame response;
    response.type = net::FrameType::kListResponse;
    response.request_id = id;
    net::EncodeListResponseBody(*series, &response.body);
    Enqueue(conn, response);
  });
}

}  // namespace coord
}  // namespace kvmatch
