// Static shard topology: which server process owns which series.
//
// Assignment is pure hashing — FNV-1a(series name) mod num_shards — so
// any process holding the same map file routes identically without
// coordination. The map is a small text file checked into the cluster's
// config (one line per shard), and its canonical serialization is
// fingerprinted; the coordinator refuses to talk to a shard whose
// fingerprint disagrees, which turns "operator edited the map on one
// box only" from silent misrouting into a typed error.
#ifndef KVMATCH_COORD_SHARD_MAP_H_
#define KVMATCH_COORD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kvmatch {
namespace coord {

/// 64-bit FNV-1a — the assignment hash. Exposed so tests can pin
/// expected owners without re-deriving the constant.
uint64_t Fnv1a64(std::string_view data);

struct ShardEndpoint {
  std::string host;
  int port = 0;

  bool operator==(const ShardEndpoint&) const = default;
};

class ShardMap {
 public:
  ShardMap() = default;

  /// Shard ids are the endpoint indices: endpoint[i] serves shard i.
  /// At least one endpoint is required.
  static Result<ShardMap> FromEndpoints(std::vector<ShardEndpoint> endpoints);

  /// Text format, one directive per line:
  ///   shard <id> <host> <port>
  /// Blank lines and '#' comments are ignored. Ids must be dense
  /// 0..N-1 (any order); duplicates or gaps are errors.
  static Result<ShardMap> Parse(std::string_view text);
  static Result<ShardMap> Load(const std::string& path);

  /// Canonical serialization: shards in id order, one per line. Parse of
  /// the output reproduces the map (and therefore its fingerprint).
  std::string Serialize() const;
  Status Save(const std::string& path) const;

  /// The shard that owns `series`: Fnv1a64(series) % num_shards().
  uint32_t OwnerOf(std::string_view series) const;

  /// FNV-1a of Serialize() — the cluster-topology identity every member
  /// must agree on.
  uint64_t Fingerprint() const;

  size_t num_shards() const { return endpoints_.size(); }
  const ShardEndpoint& endpoint(uint32_t shard) const {
    return endpoints_[shard];
  }
  const std::vector<ShardEndpoint>& endpoints() const { return endpoints_; }

 private:
  std::vector<ShardEndpoint> endpoints_;
};

/// Shell-style glob over a series name: '*' matches any run (including
/// empty), '?' any single byte; everything else is literal. The
/// coordinator treats a query series containing either metacharacter as
/// a pattern to fan out.
bool GlobMatch(std::string_view pattern, std::string_view name);
inline bool IsGlobPattern(std::string_view s) {
  return s.find('*') != std::string_view::npos ||
         s.find('?') != std::string_view::npos;
}

}  // namespace coord
}  // namespace kvmatch

#endif  // KVMATCH_COORD_SHARD_MAP_H_
