// TCP front-end for the Coordinator: the same wire protocol, framing,
// connection threading, HTTP sniffing and graceful drain as net::Server,
// with every request frame answered by federation instead of a local
// QueryService.
//
// A vanilla net::Client pointed at a CoordServer works unchanged for
// exact-series queries: the answer run (kMatchResponsePart chunks + the
// final kQueryResponse, or a typed kError) is produced by the shared
// EncodeResponseRun, byte-identical to the owner shard answering
// directly. Pattern queries ('*'/'?' in the series name) answer with a
// kFederatedResponse frame (Client::FederatedQuery). Ingest and LIST
// route through the shard map. kCancel fans out: cancelling a federated
// request id cancels every sub-query on every shard it touched.
#ifndef KVMATCH_COORD_COORD_SERVER_H_
#define KVMATCH_COORD_COORD_SERVER_H_

#include <chrono>
#include <memory>
#include <string>

#include "coord/coordinator.h"
#include "coord/shard_map.h"
#include "net/server.h"
#include "service/service_stats.h"
#include "service/thread_pool.h"

namespace kvmatch {
namespace coord {

namespace internal {
/// Holds the pieces the net::Server base needs pointers to. A private
/// base class, so it is fully constructed before the Server base (and
/// destroyed after it) — member fields of CoordServer itself would
/// construct too late.
struct CoordServerState {
  StatsRegistry stats;
};
}  // namespace internal

class CoordServer : private internal::CoordServerState,
                    public net::Server {
 public:
  struct CoordOptions {
    net::Server::Options server;
    Coordinator::Options coord;
    /// Federation workers: each in-flight federated request occupies one
    /// while it waits on shards. A full pool answers ResourceExhausted
    /// (same shedding contract as QueryService).
    size_t num_threads = 4;
    size_t max_queue = 256;
  };

  CoordServer(ShardMap map, CoordOptions options);
  ~CoordServer() override;  // must Stop() before members die

  Coordinator* coordinator() { return &coord_; }

  /// The coordinator's own counters (federated queries, cancellations,
  /// protocol errors) — distinct from any shard's registry.
  StatsRegistry* stats_registry() { return &stats; }

  std::string StatsText() const override;

 protected:
  void HandleQuery(const std::shared_ptr<Connection>& conn, uint64_t id,
                   std::string_view body,
                   std::chrono::steady_clock::time_point received) override;
  void HandleIngest(const std::shared_ptr<Connection>& conn,
                    net::FrameType type, uint64_t id,
                    std::string_view body) override;
  void HandleList(const std::shared_ptr<Connection>& conn,
                  uint64_t id) override;

 private:
  static net::Server::Options WithCoordinatorIdentity(
      net::Server::Options options, const ShardMap& map);

  Coordinator coord_;
  ThreadPool pool_;
};

}  // namespace coord
}  // namespace kvmatch

#endif  // KVMATCH_COORD_COORD_SERVER_H_
