// TimeSeries: the core value container plus subsequence views and
// z-normalization (paper §II).
#ifndef KVMATCH_TS_TIME_SERIES_H_
#define KVMATCH_TS_TIME_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

namespace kvmatch {

/// A sequence of ordered double values X = (x_1, ..., x_n).
///
/// Offsets in the public API are 0-based (the paper uses 1-based); a
/// subsequence X(i, l) here is values [i, i+l).
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](size_t i) const { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  const double* data() const { return values_.data(); }

  /// Read-only view of the length-`len` subsequence starting at `offset`.
  /// Caller must ensure offset + len <= size().
  std::span<const double> Subsequence(size_t offset, size_t len) const {
    return std::span<const double>(values_.data() + offset, len);
  }

  void Append(double v) { values_.push_back(v); }
  void Extend(std::span<const double> vs) {
    values_.insert(values_.end(), vs.begin(), vs.end());
  }

 private:
  std::vector<double> values_;
};

/// Mean of a span.
double Mean(std::span<const double> s);

/// Population standard deviation of a span (the paper's σ).
double StdDev(std::span<const double> s);

/// Mean and population std in one pass.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(std::span<const double> s);

/// Returns the z-normalized copy Ŝ = (s_i - µ) / σ. If σ is (numerically)
/// zero the series is constant and all normalized values are 0.
std::vector<double> ZNormalize(std::span<const double> s);

/// Min and max of a span (both 0 when empty).
struct MinMax {
  double min = 0.0;
  double max = 0.0;
};
MinMax ComputeMinMax(std::span<const double> s);

}  // namespace kvmatch

#endif  // KVMATCH_TS_TIME_SERIES_H_
