// PrefixStats: O(1) mean / std of any subsequence via prefix sums.
//
// Both the KV-index builder (sliding window means, §IV-B) and the cNSM
// verifier (µ_S, σ_S of every candidate, §V) need window statistics; prefix
// sums make each query O(1) after an O(n) build.
#ifndef KVMATCH_TS_STATS_ORACLE_H_
#define KVMATCH_TS_STATS_ORACLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ts/time_series.h"

namespace kvmatch {

/// Prefix-sum oracle over a fixed series.
class PrefixStats {
 public:
  PrefixStats() = default;
  explicit PrefixStats(const TimeSeries& series);
  explicit PrefixStats(std::span<const double> values);

  size_t series_length() const {
    return sum_.empty() ? 0 : sum_.size() - 1;
  }

  /// Mean of X(offset, len). Requires offset + len <= series_length().
  double WindowMean(size_t offset, size_t len) const;

  /// Population std of X(offset, len).
  double WindowStd(size_t offset, size_t len) const;

  /// Both in one call.
  MeanStd WindowMeanStd(size_t offset, size_t len) const;

  /// Means of all length-`w` sliding windows (n - w + 1 entries).
  std::vector<double> SlidingMeans(size_t w) const;

  /// Raw prefix arrays (n + 1 entries, index 0 is 0.0) for batch kernels:
  /// the SIMD rolling mean/std kernel consumes these directly and
  /// reproduces WindowMeanStd bitwise.
  std::span<const double> prefix_sums() const { return sum_; }
  std::span<const double> prefix_squares() const { return sq_; }

 private:
  void Build(std::span<const double> values);

  std::vector<double> sum_;   // sum_[i] = x_0 + ... + x_{i-1}
  std::vector<double> sq_;    // sq_[i]  = x_0^2 + ... + x_{i-1}^2
};

}  // namespace kvmatch

#endif  // KVMATCH_TS_STATS_ORACLE_H_
