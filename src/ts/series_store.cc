#include "ts/series_store.h"

#include <cstring>

#include "common/coding.h"

namespace kvmatch {

namespace {

uint64_t ChunkOffsetOf(std::string_view key, size_t ns_len) {
  uint64_t offset = 0;
  for (size_t i = ns_len + 1; i < ns_len + 9; ++i) {
    offset = (offset << 8) | static_cast<unsigned char>(key[i]);
  }
  return offset;
}

std::string HeaderKey(const std::string& ns) { return ns + "h"; }

}  // namespace

// Chunk keys: ns + "c" + fixed64 big-endian offset (so lexicographic order
// equals numeric order). Header: ns + "h".
std::string SeriesStore::ChunkKey(const std::string& ns, uint64_t offset) {
  std::string key = ns + "c";
  for (int i = 7; i >= 0; --i) {
    key.push_back(static_cast<char>((offset >> (i * 8)) & 0xff));
  }
  return key;
}

void SeriesStore::PutChunk(WriteBatch* batch, const std::string& ns,
                           uint64_t chunk_offset,
                           std::span<const double> values) {
  std::string value(values.size() * sizeof(double), '\0');
  std::memcpy(value.data(), values.data(), values.size() * sizeof(double));
  batch->Put(ChunkKey(ns, chunk_offset), value);
}

void SeriesStore::PutHeader(WriteBatch* batch, const std::string& ns,
                            uint64_t length, uint64_t chunk_size) {
  std::string header;
  PutVarint64(&header, length);
  PutVarint64(&header, chunk_size);
  batch->Put(HeaderKey(ns), header);
}

void SeriesStore::PutHeaderRedirect(WriteBatch* batch,
                                    const std::string& header_ns,
                                    uint64_t length, uint64_t chunk_size,
                                    const std::string& data_ns) {
  std::string header;
  PutVarint64(&header, length);
  PutVarint64(&header, chunk_size);
  header.append(data_ns);  // trailing bytes = the redirect target
  batch->Put(HeaderKey(header_ns), header);
}

Status SeriesStore::Write(KvStore* store, const TimeSeries& series,
                          const std::string& ns, size_t chunk_size) {
  if (chunk_size == 0) return Status::InvalidArgument("chunk_size == 0");
  const size_t n = series.size();
  for (size_t offset = 0; offset < n; offset += chunk_size) {
    const size_t len = std::min(chunk_size, n - offset);
    std::string value(len * sizeof(double), '\0');
    std::memcpy(value.data(), series.data() + offset, len * sizeof(double));
    KVMATCH_RETURN_NOT_OK(store->Put(ChunkKey(ns, offset), value));
  }
  std::string header;
  PutVarint64(&header, n);
  PutVarint64(&header, chunk_size);
  KVMATCH_RETURN_NOT_OK(store->Put(HeaderKey(ns), header));
  return store->Flush();
}

Result<SeriesStore> SeriesStore::Open(const KvStore* store,
                                      const std::string& ns) {
  std::string header;
  KVMATCH_RETURN_NOT_OK(store->Get(HeaderKey(ns), &header));
  SeriesStore out;
  std::string_view in(header);
  uint64_t n, chunk;
  if (!GetVarint64(&in, &n) || !GetVarint64(&in, &chunk) || chunk == 0) {
    return Status::Corruption("bad series header");
  }
  out.store_ = store;
  // Headers written by PutHeaderRedirect carry the chunk namespace after
  // the two varints; classic headers end there and read their own ns.
  out.ns_ = in.empty() ? ns : std::string(in);
  out.length_ = n;
  out.chunk_size_ = chunk;
  return out;
}

Result<std::vector<double>> SeriesStore::ReadRange(size_t offset,
                                                   size_t len) const {
  if (offset + len > length_) {
    return Status::OutOfRange("range past end of series");
  }
  std::vector<double> out(len);
  if (len == 0) return out;
  const size_t first_chunk = (offset / chunk_size_) * chunk_size_;
  const size_t last_chunk = ((offset + len - 1) / chunk_size_) * chunk_size_;
  std::string end_key = ChunkKey(ns_, last_chunk);
  end_key.push_back('\x01');
  size_t expected = first_chunk;
  for (auto it = store_->Scan(ChunkKey(ns_, first_chunk), end_key);
       it->Valid(); it->Next()) {
    KVMATCH_RETURN_NOT_OK(it->status());
    const uint64_t chunk_off = ChunkOffsetOf(it->key(), ns_.size());
    if (chunk_off != expected) {
      return Status::Corruption("missing series chunk");
    }
    expected += chunk_size_;
    const std::string_view value = it->value();
    const size_t chunk_len = value.size() / sizeof(double);
    // Intersect [chunk_off, chunk_off + chunk_len) with [offset, offset+len).
    const size_t lo = std::max(offset, static_cast<size_t>(chunk_off));
    const size_t hi =
        std::min(offset + len, static_cast<size_t>(chunk_off) + chunk_len);
    if (lo >= hi) continue;
    std::memcpy(out.data() + (lo - offset),
                value.data() + (lo - chunk_off) * sizeof(double),
                (hi - lo) * sizeof(double));
  }
  if (expected <= last_chunk) {
    return Status::Corruption("series scan ended early");
  }
  return out;
}

Result<TimeSeries> SeriesStore::ReadAll() const {
  auto values = ReadRange(0, length_);
  if (!values.ok()) return values.status();
  return TimeSeries(std::move(values).value());
}

}  // namespace kvmatch
