// SeriesStore: time series data stored *in* a KvStore (paper §VII-B).
//
// The paper's HBase deployment splits the series into equal-length disjoint
// chunks (1024 points by default), one row each: key = chunk start offset,
// value = the packed values. Phase 2 of KV-match then fetches candidate
// subsequences with ranged reads instead of holding the series in memory.
// This mirrors that layout over any KvStore.
//
// The header row may redirect chunk reads to a *different* namespace than
// the one it lives in (PutHeaderRedirect): the catalog's epoch delta-commit
// stores one shared, append-only chunk namespace per series and a tiny
// per-epoch header pointing at it, so appends never rewrite old chunk rows.
// Open follows the redirect transparently; headers without the field read
// chunks from their own namespace (the classic layout).
#ifndef KVMATCH_TS_SERIES_STORE_H_
#define KVMATCH_TS_SERIES_STORE_H_

#include <span>
#include <string>

#include "common/status.h"
#include "storage/kvstore.h"
#include "ts/time_series.h"

namespace kvmatch {

class SeriesStore {
 public:
  /// Writes `series` into `store` under namespace `ns` as chunked rows
  /// plus a header row recording length and chunk size.
  static Status Write(KvStore* store, const TimeSeries& series,
                      const std::string& ns = "",
                      size_t chunk_size = 1024);

  /// Stages the chunk row starting at `chunk_offset` (which must be a
  /// multiple of the chunk size) into `batch`. `values` is that chunk's
  /// payload: up to chunk_size points. Used by the ingest pipeline to
  /// commit data chunk-by-chunk.
  static void PutChunk(WriteBatch* batch, const std::string& ns,
                       uint64_t chunk_offset, std::span<const double> values);

  /// Stages the header row (series length + chunk size) into `batch`.
  static void PutHeader(WriteBatch* batch, const std::string& ns,
                        uint64_t length, uint64_t chunk_size);

  /// Stages a header row into `header_ns` whose chunk rows live in
  /// `data_ns` instead (the epoch delta-commit layout). Open on
  /// `header_ns` will read chunks from `data_ns`.
  static void PutHeaderRedirect(WriteBatch* batch,
                                const std::string& header_ns,
                                uint64_t length, uint64_t chunk_size,
                                const std::string& data_ns);

  /// The key of the chunk row covering offsets [chunk_offset,
  /// chunk_offset + chunk_size). Exposed so the catalog's recovery path
  /// can trim chunk rows past a rolled-back length, and so tests can
  /// count per-chunk write traffic.
  static std::string ChunkKey(const std::string& ns, uint64_t chunk_offset);

  /// Opens a series previously written with Write. Only the header is
  /// read; values are fetched on demand.
  static Result<SeriesStore> Open(const KvStore* store,
                                  const std::string& ns = "");

  size_t size() const { return length_; }
  size_t chunk_size() const { return chunk_size_; }
  /// Namespace the chunk rows are read from (== the header's namespace
  /// unless the header redirects).
  const std::string& data_ns() const { return ns_; }

  /// Reads values [offset, offset + len) with one ranged scan over the
  /// covering chunks. Fails with OutOfRange past the end.
  Result<std::vector<double>> ReadRange(size_t offset, size_t len) const;

  /// Loads the whole series (convenience for index building).
  Result<TimeSeries> ReadAll() const;

 private:
  SeriesStore() = default;

  const KvStore* store_ = nullptr;
  std::string ns_;
  size_t length_ = 0;
  size_t chunk_size_ = 0;
};

}  // namespace kvmatch

#endif  // KVMATCH_TS_SERIES_STORE_H_
