// Time series persistence: raw binary (the paper's data-file format, §VII-A)
// and CSV for interoperability.
#ifndef KVMATCH_TS_IO_H_
#define KVMATCH_TS_IO_H_

#include <string>

#include "common/status.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Writes values back-to-back as little-endian doubles; offsets are implied
/// by byte position, mirroring the paper's local-file layout.
Status WriteBinary(const TimeSeries& series, const std::string& path);

/// Reads a binary file written by WriteBinary.
Result<TimeSeries> ReadBinary(const std::string& path);

/// Reads a contiguous range [offset, offset+len) of values from a binary
/// file without loading the whole series (seek + sequential read).
Result<std::vector<double>> ReadBinaryRange(const std::string& path,
                                            size_t offset, size_t len);

/// One value per line.
Status WriteCsv(const TimeSeries& series, const std::string& path);
Result<TimeSeries> ReadCsv(const std::string& path);

}  // namespace kvmatch

#endif  // KVMATCH_TS_IO_H_
