// Synthetic workload generation (paper §VIII-A2).
//
// The paper's synthetic series interleave three segment types — random walk,
// Gaussian, and mixed sine — with per-segment random parameters. The same
// machinery also fabricates "UCR-archive-like" concatenations (heterogeneous
// pattern segments) used as the stand-in for the real-data experiments, plus
// query extraction with controlled perturbation for selectivity calibration.
#ifndef KVMATCH_TS_GENERATOR_H_
#define KVMATCH_TS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Parameter ranges for the paper's three segment types. Defaults follow
/// §VIII-A2 exactly.
struct SyntheticConfig {
  // Random walk: start in [-start_abs, start_abs], step in [-step_abs, step_abs].
  double walk_start_abs = 5.0;
  double walk_step_abs = 1.0;
  // Gaussian: mean in [-gauss_mean_abs, gauss_mean_abs], std in [0, gauss_std_max].
  double gauss_mean_abs = 5.0;
  double gauss_std_max = 2.0;
  // Mixed sine: period, amplitude in [sine_lo, sine_hi], mean in [-sine_mean_abs, ...].
  double sine_period_lo = 2.0;
  double sine_period_hi = 10.0;
  double sine_amp_lo = 2.0;
  double sine_amp_hi = 10.0;
  double sine_mean_abs = 5.0;
  // Segment length range.
  size_t seg_len_lo = 500;
  size_t seg_len_hi = 5000;
  // Number of sine components mixed together.
  int sine_components = 3;
};

/// Generates a length-`n` series by repeatedly appending random segments.
TimeSeries GenerateSynthetic(size_t n, Rng* rng,
                             const SyntheticConfig& config = {});

/// Generates a "UCR-archive-like" series: a concatenation of many short
/// pattern instances (heartbeat-like spikes, steps, smooth bumps, noise)
/// whose baseline drifts between segments. Approximates the paper's
/// concatenated UCR Archive data used for the real-data experiments.
TimeSeries GenerateUcrLike(size_t n, Rng* rng);

/// Extracts the subsequence X(offset, len) and perturbs every point with
/// Gaussian noise of standard deviation `noise_std`. With noise_std = 0 the
/// query matches exactly (distance 0) at `offset`.
std::vector<double> ExtractQuery(const TimeSeries& x, size_t offset,
                                 size_t len, double noise_std, Rng* rng);

/// Applies offset shifting and amplitude scaling to a query:
/// q'_i = scale * q_i + shift. Used to produce cNSM workloads whose raw
/// values differ from the data but whose shape matches.
std::vector<double> ShiftScale(std::span<const double> q, double shift,
                               double scale);

// ---- Domain pattern generators used by the examples ----

/// Extreme-Operating-Gust wind-speed pattern (Fig. 2): a dip, a sharp rise
/// to a peak, and a return to the base level, of the given length.
std::vector<double> EogPattern(size_t len, double base, double dip,
                               double peak);

/// Bridge strain pulse for a vehicle crossing: a smooth bump whose height
/// scales with vehicle weight (the IoT example in §I).
std::vector<double> StrainPulse(size_t len, double baseline, double height);

/// Activity-monitoring block (PAMAP-like, Example 1): level + oscillation
/// depends on activity id; used by the activity_explorer example.
std::vector<double> ActivityBlock(size_t len, int activity_id, Rng* rng);

}  // namespace kvmatch

#endif  // KVMATCH_TS_GENERATOR_H_
