#include "ts/time_series.h"

#include <algorithm>
#include <cmath>

namespace kvmatch {

double Mean(std::span<const double> s) {
  if (s.empty()) return 0.0;
  double sum = 0.0;
  for (double v : s) sum += v;
  return sum / static_cast<double>(s.size());
}

double StdDev(std::span<const double> s) { return ComputeMeanStd(s).std; }

MeanStd ComputeMeanStd(std::span<const double> s) {
  MeanStd out;
  if (s.empty()) return out;
  double sum = 0.0, sq = 0.0;
  for (double v : s) {
    sum += v;
    sq += v * v;
  }
  const double n = static_cast<double>(s.size());
  out.mean = sum / n;
  // Clamp to zero: catastrophic cancellation can produce tiny negatives.
  const double var = std::max(0.0, sq / n - out.mean * out.mean);
  out.std = std::sqrt(var);
  return out;
}

std::vector<double> ZNormalize(std::span<const double> s) {
  const MeanStd ms = ComputeMeanStd(s);
  std::vector<double> out(s.size());
  if (ms.std <= 1e-12) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  const double inv = 1.0 / ms.std;
  for (size_t i = 0; i < s.size(); ++i) out[i] = (s[i] - ms.mean) * inv;
  return out;
}

MinMax ComputeMinMax(std::span<const double> s) {
  MinMax out;
  if (s.empty()) return out;
  auto [lo, hi] = std::minmax_element(s.begin(), s.end());
  out.min = *lo;
  out.max = *hi;
  return out;
}

}  // namespace kvmatch
