#include "ts/generator.h"

#include <algorithm>
#include <cmath>

namespace kvmatch {

namespace {

void AppendRandomWalk(std::vector<double>* out, size_t len, Rng* rng,
                      const SyntheticConfig& cfg) {
  double v = rng->Uniform(-cfg.walk_start_abs, cfg.walk_start_abs);
  for (size_t i = 0; i < len; ++i) {
    out->push_back(v);
    v += rng->Uniform(-cfg.walk_step_abs, cfg.walk_step_abs);
  }
}

void AppendGaussian(std::vector<double>* out, size_t len, Rng* rng,
                    const SyntheticConfig& cfg) {
  const double mean = rng->Uniform(-cfg.gauss_mean_abs, cfg.gauss_mean_abs);
  const double std = rng->Uniform(0.0, cfg.gauss_std_max);
  for (size_t i = 0; i < len; ++i) out->push_back(rng->Gaussian(mean, std));
}

void AppendMixedSine(std::vector<double>* out, size_t len, Rng* rng,
                     const SyntheticConfig& cfg) {
  struct Wave {
    double period, amp, phase;
  };
  std::vector<Wave> waves(static_cast<size_t>(cfg.sine_components));
  for (auto& w : waves) {
    w.period = rng->Uniform(cfg.sine_period_lo, cfg.sine_period_hi);
    w.amp = rng->Uniform(cfg.sine_amp_lo, cfg.sine_amp_hi);
    w.phase = rng->Uniform(0.0, 2.0 * M_PI);
  }
  const double mean = rng->Uniform(-cfg.sine_mean_abs, cfg.sine_mean_abs);
  for (size_t i = 0; i < len; ++i) {
    double v = mean;
    for (const auto& w : waves) {
      v += w.amp * std::sin(2.0 * M_PI * static_cast<double>(i) / w.period +
                            w.phase);
    }
    out->push_back(v);
  }
}

}  // namespace

TimeSeries GenerateSynthetic(size_t n, Rng* rng,
                             const SyntheticConfig& cfg) {
  std::vector<double> out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t remaining = n - out.size();
    size_t len = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(cfg.seg_len_lo),
        static_cast<int64_t>(cfg.seg_len_hi)));
    len = std::min(len, remaining);
    switch (rng->UniformInt(0, 2)) {
      case 0: AppendRandomWalk(&out, len, rng, cfg); break;
      case 1: AppendGaussian(&out, len, rng, cfg); break;
      default: AppendMixedSine(&out, len, rng, cfg); break;
    }
  }
  return TimeSeries(std::move(out));
}

TimeSeries GenerateUcrLike(size_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  double baseline = 0.0;
  while (out.size() < n) {
    const size_t remaining = n - out.size();
    size_t len =
        static_cast<size_t>(rng->UniformInt(128, 1024));
    len = std::min(len, remaining);
    // Baseline drifts between "datasets" of the concatenated archive.
    baseline += rng->Gaussian(0.0, 1.5);
    baseline = std::clamp(baseline, -20.0, 20.0);
    const int kind = static_cast<int>(rng->UniformInt(0, 3));
    const double amp = rng->Uniform(0.5, 4.0);
    const double noise = rng->Uniform(0.02, 0.3);
    for (size_t i = 0; i < len; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(len);
      double v = baseline;
      switch (kind) {
        case 0:  // heartbeat-like periodic spikes
          v += amp * std::exp(-50.0 * std::pow(std::fmod(t * 6.0, 1.0) - 0.5, 2));
          break;
        case 1:  // step / square pattern
          v += (std::fmod(t * 4.0, 1.0) < 0.5 ? amp : -amp) * 0.5;
          break;
        case 2:  // smooth bump
          v += amp * std::sin(M_PI * t);
          break;
        default:  // correlated noise
          v += (out.empty() ? 0.0 : (out.back() - baseline) * 0.7) +
               rng->Gaussian(0.0, amp * 0.2);
          break;
      }
      out.push_back(v + rng->Gaussian(0.0, noise));
    }
  }
  return TimeSeries(std::move(out));
}

std::vector<double> ExtractQuery(const TimeSeries& x, size_t offset,
                                 size_t len, double noise_std, Rng* rng) {
  std::vector<double> q(len);
  for (size_t i = 0; i < len; ++i) {
    q[i] = x[offset + i] + (noise_std > 0.0 ? rng->Gaussian(0.0, noise_std)
                                            : 0.0);
  }
  return q;
}

std::vector<double> ShiftScale(std::span<const double> q, double shift,
                               double scale) {
  std::vector<double> out(q.size());
  for (size_t i = 0; i < q.size(); ++i) out[i] = scale * q[i] + shift;
  return out;
}

std::vector<double> EogPattern(size_t len, double base, double dip,
                               double peak) {
  // Piecewise shape per Fig. 2: slight dip (first 25%), steep rise to peak
  // (25%..55%), fall below base (55%..80%), recovery (80%..100%).
  std::vector<double> out(len);
  for (size_t i = 0; i < len; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(len - 1);
    double v;
    if (t < 0.25) {
      v = base - dip * std::sin(M_PI * t / 0.25);
    } else if (t < 0.55) {
      const double u = (t - 0.25) / 0.30;
      v = base + (peak - base) * std::sin(M_PI * u / 2.0);
    } else if (t < 0.80) {
      const double u = (t - 0.55) / 0.25;
      v = peak - (peak - base + dip) * u;
    } else {
      const double u = (t - 0.80) / 0.20;
      v = (base - dip) + dip * u;
    }
    out[i] = v;
  }
  return out;
}

std::vector<double> StrainPulse(size_t len, double baseline, double height) {
  std::vector<double> out(len);
  for (size_t i = 0; i < len; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(len - 1);
    // Hann-window bump with a small double-axle ripple on top.
    const double bump = 0.5 * (1.0 - std::cos(2.0 * M_PI * t));
    const double ripple = 0.08 * std::sin(6.0 * M_PI * t) * bump;
    out[i] = baseline + height * (bump + ripple);
  }
  return out;
}

std::vector<double> ActivityBlock(size_t len, int activity_id, Rng* rng) {
  // Each activity has a characteristic level (offset) and oscillation
  // (amplitude/frequency) so that normalized shapes can collide across
  // activities while raw levels separate them — the Example 1 phenomenon.
  const double level = 2.0 * static_cast<double>(activity_id % 5) - 4.0;
  const double amp = 0.2 + 0.5 * static_cast<double>(activity_id % 3);
  const double freq = 0.02 + 0.015 * static_cast<double>(activity_id % 4);
  std::vector<double> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = level +
             amp * std::sin(2.0 * M_PI * freq * static_cast<double>(i)) +
             rng->Gaussian(0.0, 0.1);
  }
  return out;
}

}  // namespace kvmatch
