#include "ts/io.h"

#include <cstdio>
#include <string>
#include <vector>

namespace kvmatch {

Status WriteBinary(const TimeSeries& series, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const auto& v = series.values();
  if (!v.empty() &&
      std::fwrite(v.data(), sizeof(double), v.size(), f) != v.size()) {
    std::fclose(f);
    return Status::IOError("short write to " + path);
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (bytes < 0 || bytes % static_cast<long>(sizeof(double)) != 0) {
    std::fclose(f);
    return Status::Corruption(path + " is not a multiple of 8 bytes");
  }
  std::vector<double> v(static_cast<size_t>(bytes) / sizeof(double));
  if (!v.empty() &&
      std::fread(v.data(), sizeof(double), v.size(), f) != v.size()) {
    std::fclose(f);
    return Status::IOError("short read from " + path);
  }
  std::fclose(f);
  return TimeSeries(std::move(v));
}

Result<std::vector<double>> ReadBinaryRange(const std::string& path,
                                            size_t offset, size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fseek(f, static_cast<long>(offset * sizeof(double)), SEEK_SET) !=
      0) {
    std::fclose(f);
    return Status::IOError("seek failed in " + path);
  }
  std::vector<double> v(len);
  if (len > 0 && std::fread(v.data(), sizeof(double), len, f) != len) {
    std::fclose(f);
    return Status::OutOfRange("range past end of " + path);
  }
  std::fclose(f);
  return v;
}

Status WriteCsv(const TimeSeries& series, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  for (double v : series.values()) {
    if (std::fprintf(f, "%.17g\n", v) < 0) {
      std::fclose(f);
      return Status::IOError("write failed: " + path);
    }
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::vector<double> v;
  double x;
  while (std::fscanf(f, "%lf", &x) == 1) v.push_back(x);
  std::fclose(f);
  return TimeSeries(std::move(v));
}

}  // namespace kvmatch
