#include "ts/stats_oracle.h"

#include <algorithm>
#include <cmath>

namespace kvmatch {

PrefixStats::PrefixStats(const TimeSeries& series) {
  Build(std::span<const double>(series.values()));
}

PrefixStats::PrefixStats(std::span<const double> values) { Build(values); }

void PrefixStats::Build(std::span<const double> values) {
  const size_t n = values.size();
  sum_.assign(n + 1, 0.0);
  sq_.assign(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    sum_[i + 1] = sum_[i] + values[i];
    sq_[i + 1] = sq_[i] + values[i] * values[i];
  }
}

double PrefixStats::WindowMean(size_t offset, size_t len) const {
  if (len == 0) return 0.0;
  return (sum_[offset + len] - sum_[offset]) / static_cast<double>(len);
}

double PrefixStats::WindowStd(size_t offset, size_t len) const {
  return WindowMeanStd(offset, len).std;
}

MeanStd PrefixStats::WindowMeanStd(size_t offset, size_t len) const {
  MeanStd out;
  if (len == 0) return out;
  const double n = static_cast<double>(len);
  out.mean = (sum_[offset + len] - sum_[offset]) / n;
  const double mean_sq = (sq_[offset + len] - sq_[offset]) / n;
  out.std = std::sqrt(std::max(0.0, mean_sq - out.mean * out.mean));
  return out;
}

std::vector<double> PrefixStats::SlidingMeans(size_t w) const {
  std::vector<double> out;
  const size_t n = series_length();
  if (w == 0 || n < w) return out;
  out.reserve(n - w + 1);
  const double inv = 1.0 / static_cast<double>(w);
  for (size_t i = 0; i + w <= n; ++i) {
    out.push_back((sum_[i + w] - sum_[i]) * inv);
  }
  return out;
}

}  // namespace kvmatch
