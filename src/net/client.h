// Blocking client for the kvmatch wire protocol, with request pipelining:
// SendRequest() pushes a frame and returns its request id immediately, so
// a client can keep many queries in flight on one connection and collect
// the responses with WaitResponse() in any order (responses that arrive
// while waiting for a different id are parked).
//
// A Client is NOT thread-safe: use one per thread (the remote-bench tool
// and bench/net_throughput.cc open one connection per simulated client,
// which is also how the server's per-connection stats stay meaningful).
#ifndef KVMATCH_NET_CLIENT_H_
#define KVMATCH_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"

namespace kvmatch {
namespace net {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one query frame (literal values, or by-reference for the
  /// overload taking a WireQueryRequest) and returns its request id.
  Result<uint64_t> SendRequest(const QueryRequest& request);
  Result<uint64_t> SendRequest(const WireQueryRequest& request);

  /// Blocks until the response for `id` arrives. A kError answer is
  /// surfaced as an OK Result whose response.status carries the decoded
  /// Status — exactly what the in-process Submit().get() would return.
  /// Streamed responses (kMatchResponsePart chunks + final frame) are
  /// reassembled transparently: the returned matches are identical to
  /// the single-frame encoding. Transport-level failures (connection
  /// lost, stream corruption) are non-OK Results; after one, the
  /// connection is unusable.
  Result<QueryResponse> WaitResponse(uint64_t id);

  /// Blocks until the final frame of *any* in-flight query arrives and
  /// returns (request id, reassembled response) — the demultiplexing
  /// primitive for callers that pipeline many queries and want answers in
  /// completion order (the coordinator's per-shard fan-out). Only valid
  /// while queries are the sole outstanding request kind on this
  /// connection; parked final frames are drained first, in id order.
  Result<std::pair<uint64_t, QueryResponse>> WaitAnyResponse();

  /// Bounds every blocking Wait* call entered after this: a wait that has
  /// not completed within the budget returns DeadlineExceeded. Unlike
  /// transport failures this leaves the connection usable — bytes already
  /// buffered (even a partial frame) are kept and the wait can simply be
  /// retried. 0 restores unbounded waits.
  void set_wait_timeout_ms(double ms) { wait_timeout_ms_ = ms; }

  /// Abandons an in-flight request: anything already parked for `id` is
  /// dropped now, and frames for it that arrive later are discarded
  /// instead of parked (the tombstone retires on the terminal frame, so
  /// it cannot accumulate). Used after a timed-out wait, when the caller
  /// stops caring about the answer but the server will still send it.
  void Forget(uint64_t id);

  /// Observability for leak regression tests: parked final frames /
  /// request ids with parked stream chunks / live tombstones.
  size_t parked_frames() const { return parked_.size(); }
  size_t parked_part_ids() const { return parked_parts_.size(); }
  size_t forgotten_ids() const { return forgotten_.size(); }

  /// Requests cancellation of the in-flight query `id` (fire-and-forget:
  /// no ack frame). The query's own response then arrives as Cancelled —
  /// or as its normal result if it completed first; callers must still
  /// WaitResponse(id).
  Status Cancel(uint64_t id);

  /// SendRequest + WaitResponse.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Remote ingest: registers `name` with `values` as its initial points
  /// (CREATE frame). The ack carries the installed epoch and length.
  Result<IngestAck> CreateSeries(const std::string& name,
                                 std::span<const double> values);

  /// Extends a registered series (APPEND frame). Chunk large appends:
  /// one frame must stay under the server's payload cap (~8M points).
  Result<IngestAck> AppendSeries(const std::string& name,
                                 std::span<const double> values);

  /// Unregisters a series (DROP frame); in-flight remote queries against
  /// it complete on their pinned epoch.
  Status DropSeries(const std::string& name);

  /// Server-side Prometheus-style stats dump (STATS frame).
  Result<std::string> StatsText();

  /// Catalog directory: every registered series and its length.
  Result<std::vector<SeriesInfo>> ListSeries();

  /// The server's cluster identity (kShardInfo round-trip): which shard
  /// it is, under which map fingerprint, or standalone/coordinator.
  Result<ShardInfo> GetShardInfo();

  /// Pattern query through a coordinator: sends `request` (whose series
  /// may be a '*'/'?' glob) and waits for the kFederatedResponse.
  Result<FederatedResponse> FederatedQuery(const WireQueryRequest& request);

  Status Ping();

 private:
  explicit Client(int fd);

  Result<uint64_t> SendFrame(FrameType type, std::string body);
  /// Reads frames until the one answering `id` shows up; parks others.
  /// With id == 0, returns the next final frame for any request instead.
  Result<Frame> WaitFrame(uint64_t id);
  /// Turns a final frame into the QueryResponse it carries, folding in
  /// the stream chunks accumulated for `id`.
  Result<QueryResponse> AssembleResponse(Result<Frame> frame, uint64_t id);
  /// CREATE/APPEND round-trip body shared by the ingest methods.
  Result<IngestAck> IngestRoundTrip(FrameType type, const std::string& name,
                                    std::span<const double> values);

  int fd_;
  uint64_t next_id_ = 1;
  double wait_timeout_ms_ = 0.0;
  FrameDecoder decoder_;
  std::map<uint64_t, Frame> parked_;
  /// Streamed match chunks accumulated per request id until the final
  /// frame for that id is consumed (or arrives as an error — an error
  /// never carries matches, so its chunks are dropped on arrival rather
  /// than parked until a WaitResponse that may never come).
  std::map<uint64_t, std::vector<MatchResult>> parked_parts_;
  /// Requests abandoned via Forget(): frames for these ids are discarded
  /// on arrival; an id retires when its terminal frame is seen.
  std::set<uint64_t> forgotten_;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_CLIENT_H_
