// Blocking client for the kvmatch wire protocol, with request pipelining:
// SendRequest() pushes a frame and returns its request id immediately, so
// a client can keep many queries in flight on one connection and collect
// the responses with WaitResponse() in any order (responses that arrive
// while waiting for a different id are parked).
//
// A Client is NOT thread-safe: use one per thread (the remote-bench tool
// and bench/net_throughput.cc open one connection per simulated client,
// which is also how the server's per-connection stats stay meaningful).
#ifndef KVMATCH_NET_CLIENT_H_
#define KVMATCH_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace kvmatch {
namespace net {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one query frame (literal values, or by-reference for the
  /// overload taking a WireQueryRequest) and returns its request id.
  Result<uint64_t> SendRequest(const QueryRequest& request);
  Result<uint64_t> SendRequest(const WireQueryRequest& request);

  /// Blocks until the response for `id` arrives. A kError answer is
  /// surfaced as an OK Result whose response.status carries the decoded
  /// Status — exactly what the in-process Submit().get() would return.
  /// Streamed responses (kMatchResponsePart chunks + final frame) are
  /// reassembled transparently: the returned matches are identical to
  /// the single-frame encoding. Transport-level failures (connection
  /// lost, stream corruption) are non-OK Results; after one, the
  /// connection is unusable.
  Result<QueryResponse> WaitResponse(uint64_t id);

  /// Requests cancellation of the in-flight query `id` (fire-and-forget:
  /// no ack frame). The query's own response then arrives as Cancelled —
  /// or as its normal result if it completed first; callers must still
  /// WaitResponse(id).
  Status Cancel(uint64_t id);

  /// SendRequest + WaitResponse.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Remote ingest: registers `name` with `values` as its initial points
  /// (CREATE frame). The ack carries the installed epoch and length.
  Result<IngestAck> CreateSeries(const std::string& name,
                                 std::span<const double> values);

  /// Extends a registered series (APPEND frame). Chunk large appends:
  /// one frame must stay under the server's payload cap (~8M points).
  Result<IngestAck> AppendSeries(const std::string& name,
                                 std::span<const double> values);

  /// Unregisters a series (DROP frame); in-flight remote queries against
  /// it complete on their pinned epoch.
  Status DropSeries(const std::string& name);

  /// Server-side Prometheus-style stats dump (STATS frame).
  Result<std::string> StatsText();

  /// Catalog directory: every registered series and its length.
  Result<std::vector<SeriesInfo>> ListSeries();

  Status Ping();

 private:
  explicit Client(int fd);

  Result<uint64_t> SendFrame(FrameType type, std::string body);
  /// Reads frames until the one answering `id` shows up; parks others.
  Result<Frame> WaitFrame(uint64_t id);
  /// CREATE/APPEND round-trip body shared by the ingest methods.
  Result<IngestAck> IngestRoundTrip(FrameType type, const std::string& name,
                                    std::span<const double> values);

  int fd_;
  uint64_t next_id_ = 1;
  FrameDecoder decoder_;
  std::map<uint64_t, Frame> parked_;
  /// Streamed match chunks accumulated per request id until the final
  /// frame for that id is consumed by WaitResponse.
  std::map<uint64_t, std::vector<MatchResult>> parked_parts_;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_CLIENT_H_
