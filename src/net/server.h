// Multi-client TCP front-end over the QueryService (pazpar2-style session
// multiplexing: one server process, many concurrent connections, each
// pipelining independent queries over the shared catalog).
//
// Threading model: a single epoll reactor thread owns every socket —
// accept, incremental frame decode on EPOLLIN, and completion-order
// writes drained from a per-connection outbox on EPOLLOUT — so the
// thread count is constant no matter how many connections are open
// (C10k from one loop). Query execution stays on the QueryService pool:
// the reactor decodes a kQueryRequest, submits it through
// SubmitWithCallback, and the completion (running on a pool worker)
// pushes the encoded response frames onto the connection's outbox and
// prods the loop through an eventfd wakeup. Blocking request kinds
// (catalog ingest, a coordinator's shard round-trips) are handed to one
// helper thread via RunBlocking(), with that connection's frame
// processing suspended until the work finishes — per-connection frame
// order is exactly what a dedicated reader thread would have produced,
// but every other connection keeps flowing.
//
// Flow control: sockets are nonblocking; partial reads resume through
// the incremental FrameDecoder and partial writes through a write cursor
// into the outbox, which EPOLLOUT (level-triggered) re-drives. Queued
// frames coalesce into a single writev per drain round, so streaming
// tiny chunked matches does not pay one syscall per frame. When a
// connection's outbox exceeds max_outbox_bytes (a slow reader with a
// deep pipeline), the reactor stops reading from that connection until
// the peer drains below half the cap — responses already owed are never
// dropped, but a stalled consumer cannot queue unbounded new work.
//
// Robustness: a CRC-corrupted or malformed frame is answered with a
// typed kError frame and the connection keeps serving; only an oversized
// declared payload (framing no longer trustworthy) ends that connection
// (after its error frame flushes). Connections over the limit are
// refused with ResourceExhausted. A disconnect cancels the queries still
// in flight on that connection — their compute is not owed to anyone
// anymore. Stop() is graceful with a bounded drain: it stops accepting
// and reading, lets submitted queries finish for up to drain_timeout_ms,
// cancels whatever is still running via the per-query tokens, flushes
// the responses (abandoning peers that stop reading for
// kStopWriteGraceMs), then joins the loop.
//
// Large match sets stream: when a response carries more matches than
// stream_chunk_matches, it leaves as a sequence of kMatchResponsePart
// frames followed by a final (matchless) kQueryResponse, so no result is
// ever forced through a single ≤64 MiB frame. A kCancel frame aborts the
// in-flight query with the same request id on that connection.
//
// Plain HTTP coexists on the frame port via first-bytes sniffing:
// GET/HEAD /metrics and /healthz are answered directly by the loop, with
// Connection: keep-alive honored when the scraper asks for it (and
// Connection: close otherwise).
#ifndef KVMATCH_NET_SERVER_H_
#define KVMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/protocol.h"
#include "service/catalog.h"
#include "service/query_service.h"

namespace kvmatch {
namespace net {

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;                  // 0 → kernel-assigned; see port()
    size_t max_connections = 64;   // beyond this, refuse with an error frame
    double idle_timeout_ms = 0.0;  // close idle connections; 0 disables
    size_t max_frame_bytes = kMaxPayloadBytes;
    /// Backpressure cap on one connection's queued-but-unsent response
    /// bytes: past it the reactor stops reading that connection's socket
    /// (no new requests) until the peer drains below half the cap.
    /// Responses owed for already-accepted requests still enqueue — the
    /// cap bounds new intake, not delivery. 0 disables.
    size_t max_outbox_bytes = 256ull << 20;
    /// Cluster identity answered on kShardInfoRequest: this process's
    /// shard id and the shard count / fingerprint of the map that
    /// assigned it. Defaults mean "standalone: not part of a cluster".
    uint32_t shard_id = kStandaloneShardId;
    uint32_t num_shards = 0;
    uint64_t shard_map_fingerprint = 0;
    /// When set, ingest frames for series this predicate rejects are
    /// refused with InvalidArgument — a misconfigured client writing
    /// through a stale shard map fails loudly instead of splitting a
    /// series across shards. Null accepts everything.
    std::function<bool(const std::string&)> owns_series;
    /// Responses with more matches than this stream as kMatchResponsePart
    /// chunks of this many matches, then a final (matchless)
    /// kQueryResponse — so a huge match set never has to fit one frame.
    /// The default keeps every part well under the 64 MiB payload cap;
    /// 0 disables streaming (single-frame responses only).
    size_t stream_chunk_matches = 2'000'000;
    /// Stop(): wall-clock budget for draining in-flight queries before
    /// the remaining ones are cancelled via their tokens (they then
    /// answer Cancelled and the drain completes). 0 waits forever.
    double drain_timeout_ms = 30'000.0;
    /// Slow-query log threshold: a query whose end-to-end latency reaches
    /// this emits its full trace (queue/probe/verify/serialize spans) as
    /// one structured JSON line. Tracing is forced server-side for every
    /// query while enabled, whether or not the client asked for a trace.
    /// 0 disables.
    double slow_query_ms = 0.0;
    /// Sink for slow-query log lines (no trailing newline). Defaults to
    /// stderr. Must be thread-safe: completions fire from pool workers.
    std::function<void(const std::string&)> slow_query_log;
    /// Optional event journal whose in-memory ring (the flight recorder)
    /// Stop() dumps when dump_events_on_stop is set — the last thing a
    /// crashing-but-graceful shutdown leaves behind. Not owned.
    EventLog* event_log = nullptr;
    bool dump_events_on_stop = false;
    /// Sink for dumped flight-recorder lines (no trailing newline).
    /// Defaults to stderr.
    std::function<void(const std::string&)> event_dump;
  };

  /// `catalog` resolves by-reference queries and LIST requests; `service`
  /// executes. Both must outlive the server.
  Server(Catalog* catalog, QueryService* service, Options options);
  /// Subclasses (a coordinator front-end) that reuse the transport —
  /// reactor, framing, HTTP sniffing, drain — but answer the request
  /// frames themselves. They MUST call Stop() in their own destructor:
  /// the base destructor's Stop() would run after the subclass members
  /// the virtual handlers touch are gone.
  virtual ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the reactor thread.
  Status Start();

  /// Graceful shutdown: stop accepting and reading, drain in-flight
  /// queries, flush their responses, join every thread. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with Options::port == 0.
  int port() const { return port_; }

  size_t ActiveConnections() const;

  /// The service's Prometheus-style dump plus one block per live
  /// connection (requests, QPS, connection age) — what a STATS frame
  /// returns. Subclasses answer with their own exposition.
  virtual std::string StatsText() const;

 protected:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    uint64_t token = 0;  // event-loop registration
    std::chrono::steady_clock::time_point opened;

    /// Guards the fields workers share with the loop: the outbox and its
    /// byte gauge, the in-flight bookkeeping, and the activity clock.
    std::mutex mu;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    size_t outbox_bytes = 0;         // sum of queued (unsent) bytes
    size_t front_written = 0;        // partial-write cursor into front()
    /// A flush has been posted to the loop and not yet run — coalesces
    /// the kicks of back-to-back completions into one loop entry.
    bool kick_pending = false;
    /// The fd is closed and the connection retired: enqueues are dropped
    /// (their request is still retired through the pending counters).
    bool closed = false;
    size_t pending = 0;  // submitted queries not yet enqueued
    /// Cancellation token per in-flight query, keyed by the client's
    /// request id; entries vanish when the response is enqueued. kCancel
    /// frames, disconnects, and the Stop() drain watchdog fire these.
    std::map<uint64_t, std::shared_ptr<CancelToken>> inflight;
    uint64_t requests = 0;  // served requests (stats)
    /// Last byte movement in either direction — inbound reads or write
    /// progress — so the idle reaper never closes a connection that is
    /// slowly draining a response.
    std::chrono::steady_clock::time_point last_activity;
    /// Last write progress, for the Stop() grace watchdog: a peer that
    /// stops reading during shutdown is abandoned after a bounded stall.
    std::chrono::steady_clock::time_point last_write_progress;

    // ---- loop-thread-only state ----
    FrameDecoder decoder;
    bool sniffed = false;    // first bytes classified HTTP vs frames
    bool http_mode = false;
    std::string http_buf;
    /// A blocking op (ingest / federation round-trip) is in flight on the
    /// helper thread: frame processing and reads are suspended so
    /// per-connection order matches the old dedicated-reader semantics.
    bool busy = false;
    bool reads_paused = false;  // EPOLLIN disarmed (backpressure/busy)
    bool want_write = false;    // EPOLLOUT armed (partial write pending)
    /// No more input will be processed (peer EOF, fatal framing error,
    /// HTTP close, or server drain): the connection closes once pending
    /// responses have been enqueued and the outbox has flushed.
    bool input_done = false;
    bool dead = false;  // CloseConnection ran (loop-side mirror of closed)
  };

  /// Transport-only construction for subclasses: no catalog, no query
  /// service; every request handler below must be overridden. `registry`
  /// records connection/protocol/HTTP counters and must outlive the
  /// server.
  Server(StatsRegistry* registry, Options options);

  /// kQueryRequest. The base submits to the QueryService; a coordinator
  /// fans out to its shards. `received` is the frame-arrival instant —
  /// the anchor for deadline-budget accounting at this hop. Runs on the
  /// loop thread and must not block.
  virtual void HandleQuery(const std::shared_ptr<Connection>& conn,
                           uint64_t id, std::string_view body,
                           std::chrono::steady_clock::time_point received);
  /// kCreate/kAppend/kDrop: decodes on the loop thread, then runs the
  /// catalog write on the blocking-work thread via RunBlocking (catalog
  /// writes are serialized; other connections' queries keep flowing) and
  /// answers with kIngestResponse or kError.
  virtual void HandleIngest(const std::shared_ptr<Connection>& conn,
                            FrameType type, uint64_t id,
                            std::string_view body);
  /// kListRequest: the catalog directory (or the union of the shards').
  virtual void HandleList(const std::shared_ptr<Connection>& conn,
                          uint64_t id);
  /// kShardInfoRequest: this process's cluster identity.
  virtual void HandleShardInfo(const std::shared_ptr<Connection>& conn,
                               uint64_t id);

  /// Books `id` as in flight on `conn` (pending/requests/inflight under
  /// one lock). False — with nothing booked — when the id is already in
  /// flight; the caller must answer with an error instead of clobbering
  /// the first query's token.
  bool RegisterRequest(const std::shared_ptr<Connection>& conn, uint64_t id,
                       const std::shared_ptr<CancelToken>& token);
  /// Retires `id` and pushes its encoded response frames onto the outbox
  /// as one contiguous run, all under one critical section — a request
  /// stays pending until its terminal frame is enqueued, which the idle
  /// reaper and the Stop() drain both rely on. Safe from any thread.
  void CompleteRequest(const std::shared_ptr<Connection>& conn, uint64_t id,
                       std::vector<std::string> wires);
  /// Encodes `response` as its wire run: kMatchResponsePart chunks per
  /// options_.stream_chunk_matches followed by the final kQueryResponse
  /// (or a single typed kError). Shared by the base completion path and
  /// the coordinator's exact-series passthrough, so both produce
  /// byte-identical frame sequences.
  std::vector<std::string> EncodeResponseRun(uint64_t id,
                                             QueryResponse response,
                                             bool wants_trace) const;

  void Enqueue(const std::shared_ptr<Connection>& conn, const Frame& frame);
  /// Pushes pre-encoded bytes (an HTTP response) onto the outbox and
  /// kicks the loop. Safe from any thread.
  void EnqueueRaw(const std::shared_ptr<Connection>& conn, std::string wire);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                 const Status& status);

  /// Hands `work` to the blocking-work thread with this connection's
  /// frame processing suspended until it finishes; per-connection frame
  /// order is preserved exactly as if the work had run inline on a
  /// dedicated reader, but the reactor keeps serving every other
  /// connection meanwhile. Loop thread only (request handlers). `work`
  /// may Enqueue/CompleteRequest/SendError; it must not touch
  /// loop-thread-only state.
  void RunBlocking(const std::shared_ptr<Connection>& conn,
                   std::function<void()> work);

  const Options& options() const { return options_; }
  StatsRegistry* registry() const { return registry_; }

 private:
  // ---- loop-thread handlers ----
  void OnAcceptable();
  void OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                         uint32_t events);
  void OnReadable(const std::shared_ptr<Connection>& conn);
  /// Drains decoded frames (and buffered HTTP requests) until the
  /// decoder runs dry or the connection suspends/dies.
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  void ProcessHttp(const std::shared_ptr<Connection>& conn);
  /// writev-drains the outbox until EAGAIN, empty, or the fairness cap;
  /// arms/disarms EPOLLOUT, resumes backpressured reads, and performs
  /// the deferred close once a finished connection has flushed.
  void FlushOutbox(const std::shared_ptr<Connection>& conn);
  /// Loop-side landing of an enqueue kick: clears the coalescing flag and
  /// flushes.
  void KickFlush(const std::shared_ptr<Connection>& conn);
  /// Re-arms EPOLLIN on a backpressured connection once its outbox has
  /// drained below half the cap.
  void MaybeResumeReads(const std::shared_ptr<Connection>& conn);
  /// Recomputes and applies the epoll interest mask from the
  /// paused/busy/input_done/want_write flags.
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  /// Closes the fd, retires the connection from the table, cancels its
  /// in-flight queries. Loop thread only; idempotent.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// True when every response owed has been enqueued AND flushed and no
  /// blocking work is suspended on this connection.
  bool ReadyToClose(const std::shared_ptr<Connection>& conn);
  /// Periodic loop work: idle reaping, drain-mode closes, the shutdown
  /// write-stall watchdog, refused-connection timeouts, and the loop
  /// counters' export to the registry.
  void OnTick();
  /// Runs on the loop at the head of Stop(): stops accepting, marks every
  /// connection input_done, restarts the write-stall grace clocks. After
  /// it returns, no new connection or request can register.
  void EnterDrain();

  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// kCancel: fires the token of the in-flight query with this id on this
  /// connection (a no-op if it already completed — that race is inherent).
  void HandleCancel(const std::shared_ptr<Connection>& conn, uint64_t id);
  /// Cancels every in-flight query on every connection (drain watchdog).
  void CancelAllInFlight();

  /// Answers one plain-HTTP request (`head` is everything up to the blank
  /// line). Returns true to keep the connection open for the next request
  /// (the client sent Connection: keep-alive), false to close after the
  /// response flushes.
  bool HandleHttp(const std::shared_ptr<Connection>& conn,
                  std::string_view head);

  /// Over-limit courtesy refusal: flushes the error frame from the loop
  /// without ever becoming a tracked connection.
  void RefuseConnection(int fd);

  /// Refused-over-limit sockets still flushing their courtesy error
  /// frame. Loop thread only.
  struct Refusal {
    int fd = -1;
    uint64_t token = 0;
    std::string wire;
    size_t written = 0;
    std::chrono::steady_clock::time_point since;
  };
  void FlushRefusal(const std::shared_ptr<Refusal>& refusal);

  Catalog* catalog_;
  QueryService* service_;
  StatsRegistry* registry_;
  Options options_;

  int listen_fd_ = -1;
  uint64_t listen_token_ = 0;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  // Loop-thread-only state.
  bool draining_ = false;       // EnterDrain ran: shutting down
  bool accept_paused_ = false;  // fd-exhaustion backoff on the listener
  std::chrono::steady_clock::time_point last_tick_{};

  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;

  /// Requests accepted (RegisterRequest) and not yet completed, across
  /// every connection including already-closed ones — what the Stop()
  /// drain waits on. The decrement is CompleteRequest's final action, so
  /// observing 0 means no completion callback will touch `this` again.
  std::atomic<size_t> total_pending_{0};

  // ---- blocking-work helper (single thread, FIFO: preserves catalog
  // write order across connections exactly like the old inline path) ----
  void BlockingWorker();
  std::thread blocking_thread_;
  std::mutex blocking_mu_;
  std::condition_variable blocking_cv_;
  std::deque<std::function<void()>> blocking_queue_;
  bool blocking_stop_ = false;

  /// Loop thread only (Stop() sweeps leftovers after the loop is joined).
  std::map<uint64_t, std::shared_ptr<Refusal>> refusals_;  // by loop token

  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_SERVER_H_
