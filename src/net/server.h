// Multi-client TCP front-end over the QueryService (pazpar2-style session
// multiplexing: one server process, many concurrent connections, each
// pipelining independent queries over the shared catalog).
//
// Threading model: one acceptor thread plus a reader and a writer thread
// per connection. The reader decodes frames and submits queries through
// QueryService::SubmitWithCallback; completions enqueue encoded response
// frames onto the connection's outbox, which the writer drains — so
// responses stream back in completion order, not submission order, and a
// slow query never blocks the answers behind it.
//
// Robustness: a CRC-corrupted or malformed frame is answered with a typed
// kError frame and the connection keeps serving; only an oversized
// declared payload (framing no longer trustworthy) closes that one
// connection. Connections over the limit are refused with
// ResourceExhausted. Stop() is graceful with a bounded drain: it stops
// accepting, lets submitted queries finish for up to drain_timeout_ms,
// cancels whatever is still running via the per-query tokens (those
// queries answer Cancelled within a verify-slice), flushes the responses,
// then joins all threads.
//
// Large match sets stream: when a response carries more matches than
// stream_chunk_matches, it leaves as a sequence of kMatchResponsePart
// frames followed by a final (matchless) kQueryResponse, so no result is
// ever forced through a single ≤64 MiB frame. A kCancel frame aborts the
// in-flight query with the same request id on that connection.
#ifndef KVMATCH_NET_SERVER_H_
#define KVMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "service/catalog.h"
#include "service/query_service.h"

namespace kvmatch {
namespace net {

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;                  // 0 → kernel-assigned; see port()
    size_t max_connections = 64;   // beyond this, refuse with an error frame
    double idle_timeout_ms = 0.0;  // close idle connections; 0 disables
    size_t max_frame_bytes = kMaxPayloadBytes;
    /// Responses with more matches than this stream as kMatchResponsePart
    /// chunks of this many matches, then a final (matchless)
    /// kQueryResponse — so a huge match set never has to fit one frame.
    /// The default keeps every part well under the 64 MiB payload cap;
    /// 0 disables streaming (single-frame responses only).
    size_t stream_chunk_matches = 2'000'000;
    /// Stop(): wall-clock budget for draining in-flight queries before
    /// the remaining ones are cancelled via their tokens (they then
    /// answer Cancelled and the drain completes). 0 waits forever.
    double drain_timeout_ms = 30'000.0;
    /// Slow-query log threshold: a query whose end-to-end latency reaches
    /// this emits its full trace (queue/probe/verify/serialize spans) as
    /// one structured JSON line. Tracing is forced server-side for every
    /// query while enabled, whether or not the client asked for a trace.
    /// 0 disables.
    double slow_query_ms = 0.0;
    /// Sink for slow-query log lines (no trailing newline). Defaults to
    /// stderr. Must be thread-safe: completions fire from pool workers.
    std::function<void(const std::string&)> slow_query_log;
    /// Optional event journal whose in-memory ring (the flight recorder)
    /// Stop() dumps when dump_events_on_stop is set — the last thing a
    /// crashing-but-graceful shutdown leaves behind. Not owned.
    EventLog* event_log = nullptr;
    bool dump_events_on_stop = false;
    /// Sink for dumped flight-recorder lines (no trailing newline).
    /// Defaults to stderr.
    std::function<void(const std::string&)> event_dump;
  };

  /// `catalog` resolves by-reference queries and LIST requests; `service`
  /// executes. Both must outlive the server.
  Server(Catalog* catalog, QueryService* service, Options options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread.
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight queries, flush
  /// their responses, join every thread. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with Options::port == 0.
  int port() const { return port_; }

  size_t ActiveConnections() const;

  /// The service's Prometheus-style dump plus one block per live
  /// connection (requests, QPS, connection age) — what a STATS frame
  /// returns.
  std::string StatsText() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::thread writer;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    size_t pending = 0;              // submitted queries not yet enqueued
    /// Cancellation token per in-flight query, keyed by the client's
    /// request id; entries vanish when the response is enqueued. kCancel
    /// frames and the Stop() drain watchdog fire these.
    std::map<uint64_t, std::shared_ptr<CancelToken>> inflight;
    bool reader_done = false;        // no more frames will be submitted
    bool aborted = false;            // write error: drop outbox, exit now
    bool finished = false;           // writer exited; joinable by reaper

    uint64_t requests = 0;  // guarded by mu (stats)
    std::chrono::steady_clock::time_point opened;
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);

  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn, uint64_t id,
                   std::string_view body);
  /// kCancel: fires the token of the in-flight query with this id on this
  /// connection (a no-op if it already completed — that race is inherent).
  void HandleCancel(const std::shared_ptr<Connection>& conn, uint64_t id);
  /// Cancels every in-flight query on every connection (drain watchdog).
  void CancelAllInFlight();
  /// Sum of pending responses across connections.
  size_t PendingQueries() const;
  /// kCreate/kAppend/kDrop: runs the catalog write inline on the reader
  /// thread (catalog writes are serialized; other connections' queries
  /// keep flowing) and answers with kIngestResponse or kError.
  void HandleIngest(const std::shared_ptr<Connection>& conn, FrameType type,
                    uint64_t id, std::string_view body);

  static void Enqueue(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);
  /// Pushes pre-encoded bytes (an HTTP response) onto the outbox.
  static void EnqueueRaw(const std::shared_ptr<Connection>& conn,
                         std::string wire);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                 const Status& status);

  /// Answers one plain-HTTP request (`head` is everything up to the blank
  /// line) on a connection whose first bytes sniffed as an HTTP verb:
  /// GET /metrics → the Prometheus text dump, GET /healthz → liveness.
  /// One request per connection (Connection: close).
  void HandleHttp(const std::shared_ptr<Connection>& conn,
                  std::string_view head);

  /// Joins finished connections; with `all`, joins every connection.
  void Reap(bool all);

  Catalog* catalog_;
  QueryService* service_;
  Options options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_SERVER_H_
