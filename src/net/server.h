// Multi-client TCP front-end over the QueryService (pazpar2-style session
// multiplexing: one server process, many concurrent connections, each
// pipelining independent queries over the shared catalog).
//
// Threading model: one acceptor thread plus a reader and a writer thread
// per connection. The reader decodes frames and submits queries through
// QueryService::SubmitWithCallback; completions enqueue encoded response
// frames onto the connection's outbox, which the writer drains — so
// responses stream back in completion order, not submission order, and a
// slow query never blocks the answers behind it.
//
// Robustness: a CRC-corrupted or malformed frame is answered with a typed
// kError frame and the connection keeps serving; only an oversized
// declared payload (framing no longer trustworthy) closes that one
// connection. Connections over the limit are refused with
// ResourceExhausted. Stop() is graceful: it stops accepting, lets every
// submitted query finish, flushes the responses, then joins all threads.
#ifndef KVMATCH_NET_SERVER_H_
#define KVMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "service/catalog.h"
#include "service/query_service.h"

namespace kvmatch {
namespace net {

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;                  // 0 → kernel-assigned; see port()
    size_t max_connections = 64;   // beyond this, refuse with an error frame
    double idle_timeout_ms = 0.0;  // close idle connections; 0 disables
    size_t max_frame_bytes = kMaxPayloadBytes;
  };

  /// `catalog` resolves by-reference queries and LIST requests; `service`
  /// executes. Both must outlive the server.
  Server(Catalog* catalog, QueryService* service, Options options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread.
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight queries, flush
  /// their responses, join every thread. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with Options::port == 0.
  int port() const { return port_; }

  size_t ActiveConnections() const;

  /// The service's Prometheus-style dump plus one block per live
  /// connection (requests, QPS, connection age) — what a STATS frame
  /// returns.
  std::string StatsText() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::thread writer;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    size_t pending = 0;              // submitted queries not yet enqueued
    bool reader_done = false;        // no more frames will be submitted
    bool aborted = false;            // write error: drop outbox, exit now
    bool finished = false;           // writer exited; joinable by reaper

    uint64_t requests = 0;  // guarded by mu (stats)
    std::chrono::steady_clock::time_point opened;
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);

  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn, uint64_t id,
                   std::string_view body);
  /// kCreate/kAppend/kDrop: runs the catalog write inline on the reader
  /// thread (catalog writes are serialized; other connections' queries
  /// keep flowing) and answers with kIngestResponse or kError.
  void HandleIngest(const std::shared_ptr<Connection>& conn, FrameType type,
                    uint64_t id, std::string_view body);

  static void Enqueue(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                 const Status& status);

  /// Joins finished connections; with `all`, joins every connection.
  void Reap(bool all);

  Catalog* catalog_;
  QueryService* service_;
  Options options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_SERVER_H_
