// Multi-client TCP front-end over the QueryService (pazpar2-style session
// multiplexing: one server process, many concurrent connections, each
// pipelining independent queries over the shared catalog).
//
// Threading model: one acceptor thread plus a reader and a writer thread
// per connection. The reader decodes frames and submits queries through
// QueryService::SubmitWithCallback; completions enqueue encoded response
// frames onto the connection's outbox, which the writer drains — so
// responses stream back in completion order, not submission order, and a
// slow query never blocks the answers behind it.
//
// Robustness: a CRC-corrupted or malformed frame is answered with a typed
// kError frame and the connection keeps serving; only an oversized
// declared payload (framing no longer trustworthy) closes that one
// connection. Connections over the limit are refused with
// ResourceExhausted. Stop() is graceful with a bounded drain: it stops
// accepting, lets submitted queries finish for up to drain_timeout_ms,
// cancels whatever is still running via the per-query tokens (those
// queries answer Cancelled within a verify-slice), flushes the responses,
// then joins all threads.
//
// Large match sets stream: when a response carries more matches than
// stream_chunk_matches, it leaves as a sequence of kMatchResponsePart
// frames followed by a final (matchless) kQueryResponse, so no result is
// ever forced through a single ≤64 MiB frame. A kCancel frame aborts the
// in-flight query with the same request id on that connection.
#ifndef KVMATCH_NET_SERVER_H_
#define KVMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "service/catalog.h"
#include "service/query_service.h"

namespace kvmatch {
namespace net {

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;                  // 0 → kernel-assigned; see port()
    size_t max_connections = 64;   // beyond this, refuse with an error frame
    double idle_timeout_ms = 0.0;  // close idle connections; 0 disables
    size_t max_frame_bytes = kMaxPayloadBytes;
    /// Cluster identity answered on kShardInfoRequest: this process's
    /// shard id and the shard count / fingerprint of the map that
    /// assigned it. Defaults mean "standalone: not part of a cluster".
    uint32_t shard_id = kStandaloneShardId;
    uint32_t num_shards = 0;
    uint64_t shard_map_fingerprint = 0;
    /// When set, ingest frames for series this predicate rejects are
    /// refused with InvalidArgument — a misconfigured client writing
    /// through a stale shard map fails loudly instead of splitting a
    /// series across shards. Null accepts everything.
    std::function<bool(const std::string&)> owns_series;
    /// Responses with more matches than this stream as kMatchResponsePart
    /// chunks of this many matches, then a final (matchless)
    /// kQueryResponse — so a huge match set never has to fit one frame.
    /// The default keeps every part well under the 64 MiB payload cap;
    /// 0 disables streaming (single-frame responses only).
    size_t stream_chunk_matches = 2'000'000;
    /// Stop(): wall-clock budget for draining in-flight queries before
    /// the remaining ones are cancelled via their tokens (they then
    /// answer Cancelled and the drain completes). 0 waits forever.
    double drain_timeout_ms = 30'000.0;
    /// Slow-query log threshold: a query whose end-to-end latency reaches
    /// this emits its full trace (queue/probe/verify/serialize spans) as
    /// one structured JSON line. Tracing is forced server-side for every
    /// query while enabled, whether or not the client asked for a trace.
    /// 0 disables.
    double slow_query_ms = 0.0;
    /// Sink for slow-query log lines (no trailing newline). Defaults to
    /// stderr. Must be thread-safe: completions fire from pool workers.
    std::function<void(const std::string&)> slow_query_log;
    /// Optional event journal whose in-memory ring (the flight recorder)
    /// Stop() dumps when dump_events_on_stop is set — the last thing a
    /// crashing-but-graceful shutdown leaves behind. Not owned.
    EventLog* event_log = nullptr;
    bool dump_events_on_stop = false;
    /// Sink for dumped flight-recorder lines (no trailing newline).
    /// Defaults to stderr.
    std::function<void(const std::string&)> event_dump;
  };

  /// `catalog` resolves by-reference queries and LIST requests; `service`
  /// executes. Both must outlive the server.
  Server(Catalog* catalog, QueryService* service, Options options);
  /// Subclasses (a coordinator front-end) that reuse the transport —
  /// accept/reader/writer threads, framing, HTTP sniffing, drain — but
  /// answer the request frames themselves. They MUST call Stop() in
  /// their own destructor: the base destructor's Stop() would run after
  /// the subclass members the virtual handlers touch are gone.
  virtual ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread.
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight queries, flush
  /// their responses, join every thread. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with Options::port == 0.
  int port() const { return port_; }

  size_t ActiveConnections() const;

  /// The service's Prometheus-style dump plus one block per live
  /// connection (requests, QPS, connection age) — what a STATS frame
  /// returns. Subclasses answer with their own exposition.
  virtual std::string StatsText() const;

 protected:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::thread writer;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    size_t pending = 0;              // submitted queries not yet enqueued
    /// Cancellation token per in-flight query, keyed by the client's
    /// request id; entries vanish when the response is enqueued. kCancel
    /// frames and the Stop() drain watchdog fire these.
    std::map<uint64_t, std::shared_ptr<CancelToken>> inflight;
    bool reader_done = false;        // no more frames will be submitted
    bool aborted = false;            // write error: drop outbox, exit now
    bool finished = false;           // writer exited; joinable by reaper
    /// The writer popped a frame and is mid-WriteAll: the outbox being
    /// empty does NOT mean the connection is drained. Part of the
    /// idle-timeout quiescence predicate.
    bool writing = false;
    /// Last time anything was pushed onto the outbox — outbound activity
    /// counts against idleness just like inbound bytes, so the idle
    /// reaper cannot close a connection right after serving it a slow,
    /// long-streaming response.
    std::chrono::steady_clock::time_point last_enqueue;

    uint64_t requests = 0;  // guarded by mu (stats)
    std::chrono::steady_clock::time_point opened;
  };

  /// Transport-only construction for subclasses: no catalog, no query
  /// service; every request handler below must be overridden. `registry`
  /// records connection/protocol/HTTP counters and must outlive the
  /// server.
  Server(StatsRegistry* registry, Options options);

  /// kQueryRequest. The base submits to the QueryService; a coordinator
  /// fans out to its shards. `received` is the frame-arrival instant —
  /// the anchor for deadline-budget accounting at this hop.
  virtual void HandleQuery(const std::shared_ptr<Connection>& conn,
                           uint64_t id, std::string_view body,
                           std::chrono::steady_clock::time_point received);
  /// kCreate/kAppend/kDrop: runs the catalog write inline on the reader
  /// thread (catalog writes are serialized; other connections' queries
  /// keep flowing) and answers with kIngestResponse or kError.
  virtual void HandleIngest(const std::shared_ptr<Connection>& conn,
                            FrameType type, uint64_t id,
                            std::string_view body);
  /// kListRequest: the catalog directory (or the union of the shards').
  virtual void HandleList(const std::shared_ptr<Connection>& conn,
                          uint64_t id);
  /// kShardInfoRequest: this process's cluster identity.
  virtual void HandleShardInfo(const std::shared_ptr<Connection>& conn,
                               uint64_t id);

  /// Books `id` as in flight on `conn` (pending/requests/inflight under
  /// one lock). False — with nothing booked — when the id is already in
  /// flight; the caller must answer with an error instead of clobbering
  /// the first query's token.
  bool RegisterRequest(const std::shared_ptr<Connection>& conn, uint64_t id,
                       const std::shared_ptr<CancelToken>& token);
  /// Retires `id` and pushes its encoded response frames onto the outbox
  /// as one contiguous run, all under one critical section — a request
  /// stays pending until its terminal frame is enqueued, which the idle
  /// reaper and the Stop() drain both rely on.
  void CompleteRequest(const std::shared_ptr<Connection>& conn, uint64_t id,
                       std::vector<std::string> wires);
  /// Encodes `response` as its wire run: kMatchResponsePart chunks per
  /// options_.stream_chunk_matches followed by the final kQueryResponse
  /// (or a single typed kError). Shared by the base completion path and
  /// the coordinator's exact-series passthrough, so both produce
  /// byte-identical frame sequences.
  std::vector<std::string> EncodeResponseRun(uint64_t id,
                                             QueryResponse response,
                                             bool wants_trace) const;

  static void Enqueue(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);
  /// Pushes pre-encoded bytes (an HTTP response) onto the outbox.
  static void EnqueueRaw(const std::shared_ptr<Connection>& conn,
                         std::string wire);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                 const Status& status);

  const Options& options() const { return options_; }
  StatsRegistry* registry() const { return registry_; }

 private:
  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);

  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// kCancel: fires the token of the in-flight query with this id on this
  /// connection (a no-op if it already completed — that race is inherent).
  void HandleCancel(const std::shared_ptr<Connection>& conn, uint64_t id);
  /// Cancels every in-flight query on every connection (drain watchdog).
  void CancelAllInFlight();
  /// Sum of pending responses across connections.
  size_t PendingQueries() const;

  /// Answers one plain-HTTP request (`head` is everything up to the blank
  /// line) on a connection whose first bytes sniffed as an HTTP verb:
  /// GET /metrics → the Prometheus text dump, GET /healthz → liveness.
  /// One request per connection (Connection: close).
  void HandleHttp(const std::shared_ptr<Connection>& conn,
                  std::string_view head);

  /// Joins finished connections; with `all`, joins every connection.
  void Reap(bool all);

  Catalog* catalog_;
  QueryService* service_;
  StatsRegistry* registry_;
  Options options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_SERVER_H_
