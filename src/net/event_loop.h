// A single-threaded epoll reactor: one thread owns an epoll instance and
// every socket registered with it, dispatching readiness callbacks from
// Run(). Other threads never touch the fds directly — they hand work to
// the loop with Post(), which enqueues a closure and wakes the loop
// through an eventfd. This is the pazpar2 eventl.c shape: all I/O
// multiplexed on one thread, blocking work pushed out to helpers that
// re-enter the loop via the wakeup pipe.
//
// Registrations are keyed by an opaque token rather than the fd itself:
// a callback may close and unregister any fd (including one with events
// still queued in the current dispatch batch), and a token is never
// reused, so a stale event for a closed fd is recognized and dropped
// instead of being delivered to whatever connection inherited the fd
// number.
//
// Thread contract: Add/Mod/Del and the callbacks run on the loop thread
// only (Add is also safe before Run() starts). Post(), RequestStop() and
// the counters are safe from any thread.
#ifndef KVMATCH_NET_EVENT_LOOP_H_
#define KVMATCH_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kvmatch {
namespace net {

class EventLoop {
 public:
  /// Receives the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using Callback = std::function<void(uint32_t)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the eventfd wakeup. Must succeed
  /// before any other call.
  Status Init();

  /// Registers `fd` for `events` and returns its token (never 0).
  uint64_t Add(int fd, uint32_t events, Callback callback);
  /// Replaces the interest mask of a registration.
  void Mod(uint64_t token, uint32_t events);
  /// Unregisters; the caller still owns (and closes) the fd.
  void Del(uint64_t token);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. Safe
  /// from any thread, including the loop thread itself (the closure then
  /// runs within the current or next iteration, never recursively).
  void Post(std::function<void()> fn);

  /// Dispatches events until RequestStop(). `on_tick` runs after every
  /// epoll_wait return — readiness batch or timeout — so periodic work
  /// (idle reaping, drain progress) happens at least every `tick_ms`.
  void Run(int tick_ms, const std::function<void()>& on_tick);

  /// Makes Run() return after the current iteration. Any thread.
  void RequestStop();

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  // Observability: epoll_wait returns and eventfd wakeups (Post calls
  // that actually had to prod the loop).
  uint64_t iterations() const {
    return iterations_.load(std::memory_order_relaxed);
  }
  uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  struct Handler {
    int fd = -1;
    uint32_t events = 0;
    Callback callback;
  };

  void DrainWakeup();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint64_t next_token_ = 1;
  std::map<uint64_t, Handler> handlers_;  // loop thread only

  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  /// True while an eventfd write is pending/unconsumed — coalesces the
  /// wakeup writes of back-to-back Posts into one syscall.
  std::atomic<bool> wake_pending_{false};

  std::atomic<uint64_t> iterations_{0};
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_EVENT_LOOP_H_
