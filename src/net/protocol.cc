#include "net/protocol.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvmatch {
namespace net {

namespace {

bool ReadDouble(std::string_view* in, double* value) {
  if (in->size() < 8) return false;
  *value = DecodeDouble(in->data());
  in->remove_prefix(8);
  return true;
}

bool ReadByte(std::string_view* in, uint8_t* value) {
  if (in->empty()) return false;
  *value = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return true;
}

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed frame body: ") + what);
}

}  // namespace

uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kNotFound: return 1;
    case StatusCode::kInvalidArgument: return 2;
    case StatusCode::kIOError: return 3;
    case StatusCode::kCorruption: return 4;
    case StatusCode::kNotSupported: return 5;
    case StatusCode::kOutOfRange: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kResourceExhausted: return 8;
    case StatusCode::kDeadlineExceeded: return 9;
    case StatusCode::kCancelled: return 10;
  }
  return 7;  // unknown codes degrade to Internal
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kNotFound;
    case 2: return StatusCode::kInvalidArgument;
    case 3: return StatusCode::kIOError;
    case 4: return StatusCode::kCorruption;
    case 5: return StatusCode::kNotSupported;
    case 6: return StatusCode::kOutOfRange;
    case 7: return StatusCode::kInternal;
    case 8: return StatusCode::kResourceExhausted;
    case 9: return StatusCode::kDeadlineExceeded;
    case 10: return StatusCode::kCancelled;
  }
  return StatusCode::kInternal;
}

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kNotFound: return Status::NotFound(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kIOError: return Status::IOError(std::move(msg));
    case StatusCode::kCorruption: return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOutOfRange: return Status::OutOfRange(std::move(msg));
    case StatusCode::kInternal: return Status::Internal(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

void PutStatus(const Status& status, std::string* body) {
  PutVarint32(body, StatusCodeToWire(status.code()));
  PutLengthPrefixed(body, status.message());
}

bool GetStatus(std::string_view* in, Status* out) {
  uint32_t code = 0;
  std::string_view message;
  if (!GetVarint32(in, &code)) return false;
  if (!GetLengthPrefixed(in, &message)) return false;
  *out = MakeStatus(StatusCodeFromWire(code), std::string(message));
  return true;
}

}  // namespace

// ---- Frame framing ----

void EncodeFrame(const Frame& frame, std::string* wire) {
  std::string payload;
  payload.reserve(kPayloadPrologueBytes + frame.body.size());
  payload.push_back(static_cast<char>(frame.type));
  PutFixed64(&payload, frame.request_id);
  payload.append(frame.body);

  PutFixed32(wire, static_cast<uint32_t>(payload.size()));
  PutFixed32(wire, crc32c::Mask(crc32c::Value(payload)));
  wire->append(payload);
}

FrameDecoder::FrameDecoder(size_t max_payload_bytes)
    : max_payload_bytes_(max_payload_bytes) {}

void FrameDecoder::Feed(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

FrameDecoder::Event FrameDecoder::Next(Frame* out, Status* error) {
  if (fatal_) {
    *error = Status::Corruption("stream already failed");
    return Event::kFatal;
  }
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection does not accumulate every byte it has ever seen.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return Event::kNeedMore;

  const char* header = buffer_.data() + pos_;
  const uint32_t length = DecodeFixed32(header);
  if (length > max_payload_bytes_) {
    fatal_ = true;
    *error = Status::InvalidArgument(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(max_payload_bytes_) +
        "-byte limit");
    return Event::kFatal;
  }
  if (available < kFrameHeaderBytes + length) return Event::kNeedMore;

  const std::string_view payload(header + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;  // frame consumed, valid or not

  const uint32_t expected = crc32c::Unmask(DecodeFixed32(header + 4));
  if (expected != crc32c::Value(payload)) {
    *error = Status::Corruption("frame CRC mismatch");
    return Event::kBadFrame;
  }
  if (payload.size() < kPayloadPrologueBytes) {
    *error = Status::Corruption("frame payload shorter than its prologue");
    return Event::kBadFrame;
  }
  out->type = static_cast<FrameType>(static_cast<uint8_t>(payload[0]));
  out->request_id = DecodeFixed64(payload.data() + 1);
  out->body.assign(payload.data() + kPayloadPrologueBytes,
                   payload.size() - kPayloadPrologueBytes);
  return Event::kFrame;
}

// ---- Query request ----

void EncodeQueryRequestBody(const WireQueryRequest& wire_request,
                            std::string* body) {
  const QueryRequest& r = wire_request.request;
  PutLengthPrefixed(body, r.series);
  PutVarint32(body, static_cast<uint32_t>(r.params.type));
  PutDouble(body, r.params.epsilon);
  PutDouble(body, r.params.alpha);
  PutDouble(body, r.params.beta);
  PutVarint64(body, r.params.rho);
  PutVarint64(body, r.top_k);
  PutDouble(body, r.topk_options.initial_epsilon);
  PutDouble(body, r.topk_options.growth);
  PutVarint32(body, static_cast<uint32_t>(
                        r.topk_options.max_rounds < 0
                            ? 0
                            : r.topk_options.max_rounds));
  PutVarint64(body, r.topk_options.exclusion_zone);
  PutDouble(body, r.timeout_ms);
  body->push_back(r.collect_trace ? 1 : 0);
  body->push_back(wire_request.by_reference ? 1 : 0);
  if (wire_request.by_reference) {
    PutVarint64(body, wire_request.ref_offset);
    PutVarint64(body, wire_request.ref_length);
  } else {
    PutVarint64(body, r.query.size());
    for (double v : r.query) PutDouble(body, v);
  }
}

Status DecodeQueryRequestBody(std::string_view body, WireQueryRequest* out) {
  *out = WireQueryRequest();
  QueryRequest& r = out->request;
  std::string_view series;
  if (!GetLengthPrefixed(&body, &series)) return Malformed("series name");
  r.series.assign(series);
  uint32_t type = 0;
  if (!GetVarint32(&body, &type)) return Malformed("query type");
  if (type > static_cast<uint32_t>(QueryType::kRsmL1)) {
    return Status::InvalidArgument("unknown query type " +
                                   std::to_string(type));
  }
  r.params.type = static_cast<QueryType>(type);
  if (!ReadDouble(&body, &r.params.epsilon)) return Malformed("epsilon");
  if (!ReadDouble(&body, &r.params.alpha)) return Malformed("alpha");
  if (!ReadDouble(&body, &r.params.beta)) return Malformed("beta");
  uint64_t rho = 0, top_k = 0;
  if (!GetVarint64(&body, &rho)) return Malformed("rho");
  if (!GetVarint64(&body, &top_k)) return Malformed("top_k");
  r.params.rho = static_cast<size_t>(rho);
  r.top_k = static_cast<size_t>(top_k);
  if (!ReadDouble(&body, &r.topk_options.initial_epsilon)) {
    return Malformed("topk initial epsilon");
  }
  if (!ReadDouble(&body, &r.topk_options.growth)) {
    return Malformed("topk growth");
  }
  uint32_t max_rounds = 0;
  uint64_t exclusion = 0;
  if (!GetVarint32(&body, &max_rounds)) return Malformed("topk max rounds");
  if (!GetVarint64(&body, &exclusion)) return Malformed("topk exclusion");
  r.topk_options.max_rounds = static_cast<int>(max_rounds);
  r.topk_options.exclusion_zone = static_cast<size_t>(exclusion);
  if (!ReadDouble(&body, &r.timeout_ms)) return Malformed("timeout");
  uint8_t trace_flag = 0;
  if (!ReadByte(&body, &trace_flag)) return Malformed("trace flag");
  if (trace_flag > 1) return Malformed("trace flag");
  r.collect_trace = trace_flag == 1;
  uint8_t kind = 0;
  if (!ReadByte(&body, &kind)) return Malformed("query kind");
  if (kind == 1) {
    out->by_reference = true;
    if (!GetVarint64(&body, &out->ref_offset)) return Malformed("ref offset");
    if (!GetVarint64(&body, &out->ref_length)) return Malformed("ref length");
  } else if (kind == 0) {
    uint64_t count = 0;
    if (!GetVarint64(&body, &count)) return Malformed("query length");
    // Divide, don't multiply: count is attacker-controlled and count * 8
    // can wrap back onto the actual body size.
    if (count != body.size() / 8 || body.size() % 8 != 0) {
      return Malformed("query values");
    }
    r.query.resize(static_cast<size_t>(count));
    for (auto& v : r.query) ReadDouble(&body, &v);
  } else {
    return Malformed("query kind");
  }
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Query response ----

void EncodeQueryResponseBody(const QueryResponse& response,
                             std::string* body) {
  EncodeQueryResponsePrefix(response, body);
  AppendQueryResponseTrace(response.trace.get(), body);
}

namespace {

void PutMatchStats(const MatchStats& s, std::string* body) {
  PutVarint64(body, s.probe.index_accesses);
  PutVarint64(body, s.probe.rows_fetched);
  PutVarint64(body, s.probe.intervals_fetched);
  PutVarint64(body, s.probe.bytes_fetched);
  PutVarint64(body, s.probe.cache_hits);
  PutVarint64(body, s.candidate_positions);
  PutVarint64(body, s.candidate_intervals);
  PutVarint64(body, s.distance_calls);
  PutVarint64(body, s.lb_pruned);
  PutVarint64(body, s.constraint_pruned);
  PutDouble(body, s.phase1_ms);
  PutDouble(body, s.phase2_ms);
}

Status GetMatchStats(std::string_view* body, MatchStats* s) {
  uint64_t* counters[] = {&s->probe.index_accesses, &s->probe.rows_fetched,
                          &s->probe.intervals_fetched,
                          &s->probe.bytes_fetched, &s->probe.cache_hits,
                          &s->candidate_positions,  &s->candidate_intervals,
                          &s->distance_calls,       &s->lb_pruned,
                          &s->constraint_pruned};
  for (uint64_t* c : counters) {
    if (!GetVarint64(body, c)) return Malformed("stats counter");
  }
  if (!ReadDouble(body, &s->phase1_ms)) return Malformed("phase1 time");
  if (!ReadDouble(body, &s->phase2_ms)) return Malformed("phase2 time");
  return Status::OK();
}

}  // namespace

void EncodeQueryResponsePrefix(const QueryResponse& response,
                               std::string* body) {
  PutStatus(response.status, body);
  PutDouble(body, response.latency_ms);
  PutVarint64(body, response.matches.size());
  for (const auto& m : response.matches) {
    PutVarint64(body, m.offset);
    PutDouble(body, m.distance);
  }
  PutMatchStats(response.stats, body);
}

void AppendQueryResponseTrace(const QueryTrace* trace, std::string* body) {
  if (trace == nullptr) {
    body->push_back(0);
    return;
  }
  body->push_back(1);
  const std::vector<TraceSpan> spans = trace->spans();
  PutVarint64(body, spans.size());
  for (const TraceSpan& span : spans) {
    PutLengthPrefixed(body, span.name);
    PutDouble(body, span.start_ms);
    PutDouble(body, span.dur_ms);
    PutVarint64(body, span.worker);
    PutVarint64(body, span.args.size());
    for (const auto& [key, value] : span.args) {
      PutLengthPrefixed(body, key);
      PutVarint64(body, value);
    }
  }
}

namespace {

// Minimum encoded size of one span: 1B name length + 8B start + 8B dur +
// 1B worker + 1B arg count. Bounds attacker-controlled span counts.
constexpr size_t kMinSpanBytes = 19;

Status DecodeResponseTrace(std::string_view* body,
                           std::shared_ptr<QueryTrace>* out) {
  uint8_t has_trace = 0;
  if (!ReadByte(body, &has_trace)) return Malformed("trace flag");
  if (has_trace == 0) return Status::OK();
  if (has_trace != 1) return Malformed("trace flag");
  uint64_t count = 0;
  if (!GetVarint64(body, &count)) return Malformed("trace span count");
  if (count > body->size() / kMinSpanBytes) {
    return Malformed("trace span count vs body size");
  }
  *out = std::make_shared<QueryTrace>();
  for (uint64_t i = 0; i < count; ++i) {
    TraceSpan span;
    std::string_view name;
    if (!GetLengthPrefixed(body, &name)) return Malformed("span name");
    span.name.assign(name);
    if (!ReadDouble(body, &span.start_ms)) return Malformed("span start");
    if (!ReadDouble(body, &span.dur_ms)) return Malformed("span duration");
    if (!GetVarint64(body, &span.worker)) return Malformed("span worker");
    uint64_t nargs = 0;
    if (!GetVarint64(body, &nargs)) return Malformed("span arg count");
    // Each arg needs >= 2 encoded bytes; bound before reserving.
    if (nargs > body->size() / 2) {
      return Malformed("span arg count vs body size");
    }
    span.args.reserve(static_cast<size_t>(nargs));
    for (uint64_t a = 0; a < nargs; ++a) {
      std::string_view key;
      uint64_t value = 0;
      if (!GetLengthPrefixed(body, &key)) return Malformed("span arg key");
      if (!GetVarint64(body, &value)) return Malformed("span arg value");
      span.args.emplace_back(std::string(key), value);
    }
    (*out)->AddSpanAt(std::move(span));
  }
  return Status::OK();
}

}  // namespace

Status DecodeQueryResponseBody(std::string_view body, QueryResponse* out) {
  *out = QueryResponse();
  if (!GetStatus(&body, &out->status)) return Malformed("status");
  if (!ReadDouble(&body, &out->latency_ms)) return Malformed("latency");
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) return Malformed("match count");
  // A match needs >= 9 encoded bytes; reject counts the body cannot hold
  // before allocating for them.
  if (count > body.size() / 9) return Malformed("match count vs body size");
  out->matches.resize(static_cast<size_t>(count));
  for (auto& m : out->matches) {
    uint64_t offset = 0;
    if (!GetVarint64(&body, &offset)) return Malformed("match offset");
    m.offset = static_cast<size_t>(offset);
    if (!ReadDouble(&body, &m.distance)) return Malformed("match distance");
  }
  KVMATCH_RETURN_NOT_OK(GetMatchStats(&body, &out->stats));
  KVMATCH_RETURN_NOT_OK(DecodeResponseTrace(&body, &out->trace));
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Streamed match parts ----

void EncodeMatchPartBody(std::span<const MatchResult> matches,
                         std::string* body) {
  PutVarint64(body, matches.size());
  for (const auto& m : matches) {
    PutVarint64(body, m.offset);
    PutDouble(body, m.distance);
  }
}

Status DecodeMatchPartBody(std::string_view body,
                           std::vector<MatchResult>* out) {
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) return Malformed("part match count");
  // A match needs >= 9 encoded bytes; reject counts the body cannot hold
  // before allocating for them.
  if (count > body.size() / 9) return Malformed("part count vs body size");
  out->reserve(out->size() + static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    MatchResult m;
    uint64_t offset = 0;
    if (!GetVarint64(&body, &offset)) return Malformed("part match offset");
    m.offset = static_cast<size_t>(offset);
    if (!ReadDouble(&body, &m.distance)) {
      return Malformed("part match distance");
    }
    out->push_back(m);
  }
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Error ----

void EncodeErrorBody(const Status& status, std::string* body) {
  PutStatus(status, body);
}

Status DecodeErrorBody(std::string_view body, Status* out) {
  if (!GetStatus(&body, out)) return Malformed("error status");
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Series listing ----

void EncodeListResponseBody(const std::vector<SeriesInfo>& series,
                            std::string* body) {
  PutVarint64(body, series.size());
  for (const auto& s : series) {
    PutLengthPrefixed(body, s.name);
    PutVarint64(body, s.length);
  }
}

Status DecodeListResponseBody(std::string_view body,
                              std::vector<SeriesInfo>* out) {
  out->clear();
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) return Malformed("series count");
  // Each entry needs >= 2 encoded bytes; bound before reserving.
  if (count > body.size() / 2) return Malformed("series count vs body size");
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SeriesInfo info;
    std::string_view name;
    if (!GetLengthPrefixed(&body, &name)) return Malformed("series name");
    info.name.assign(name);
    if (!GetVarint64(&body, &info.length)) return Malformed("series length");
    out->push_back(std::move(info));
  }
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Remote ingest ----

void EncodeIngestRequestBody(const WireIngestRequest& request,
                             std::string* body) {
  PutLengthPrefixed(body, request.series);
  PutVarint64(body, request.values.size());
  for (double v : request.values) PutDouble(body, v);
}

Status DecodeIngestRequestBody(std::string_view body,
                               WireIngestRequest* out) {
  *out = WireIngestRequest();
  std::string_view series;
  if (!GetLengthPrefixed(&body, &series)) return Malformed("series name");
  out->series.assign(series);
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) return Malformed("value count");
  // Divide, don't multiply: count is attacker-controlled and count * 8
  // can wrap back onto the actual body size.
  if (count != body.size() / 8 || body.size() % 8 != 0) {
    return Malformed("ingest values");
  }
  out->values.resize(static_cast<size_t>(count));
  for (auto& v : out->values) ReadDouble(&body, &v);
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

void EncodeIngestResponseBody(const IngestAck& ack, std::string* body) {
  PutVarint64(body, ack.epoch);
  PutVarint64(body, ack.length);
}

Status DecodeIngestResponseBody(std::string_view body, IngestAck* out) {
  *out = IngestAck();
  if (!GetVarint64(&body, &out->epoch)) return Malformed("epoch");
  if (!GetVarint64(&body, &out->length)) return Malformed("series length");
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Shard topology ----

void EncodeShardInfoBody(const ShardInfo& info, std::string* body) {
  PutVarint32(body, info.shard_id);
  PutVarint32(body, info.num_shards);
  PutFixed64(body, info.map_fingerprint);
  PutVarint64(body, info.series_count);
}

Status DecodeShardInfoBody(std::string_view body, ShardInfo* out) {
  *out = ShardInfo();
  if (!GetVarint32(&body, &out->shard_id)) return Malformed("shard id");
  if (!GetVarint32(&body, &out->num_shards)) return Malformed("shard count");
  if (body.size() < 8) return Malformed("map fingerprint");
  out->map_fingerprint = DecodeFixed64(body.data());
  body.remove_prefix(8);
  if (!GetVarint64(&body, &out->series_count)) {
    return Malformed("series count");
  }
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Federated response ----

void EncodeFederatedResponseBody(const FederatedResponse& response,
                                 std::string* body) {
  PutStatus(response.status, body);
  PutDouble(body, response.latency_ms);
  PutVarint32(body, response.shards_total);
  PutVarint32(body, response.shards_ok);
  PutVarint64(body, response.shard_errors.size());
  for (const auto& [shard, status] : response.shard_errors) {
    PutVarint32(body, shard);
    PutStatus(status, body);
  }
  PutVarint64(body, response.groups.size());
  for (const auto& group : response.groups) {
    PutLengthPrefixed(body, group.series);
    PutVarint64(body, group.matches.size());
    for (const auto& m : group.matches) {
      PutVarint64(body, m.offset);
      PutDouble(body, m.distance);
    }
  }
  PutMatchStats(response.stats, body);
  AppendQueryResponseTrace(response.trace.get(), body);
}

Status DecodeFederatedResponseBody(std::string_view body,
                                   FederatedResponse* out) {
  *out = FederatedResponse();
  if (!GetStatus(&body, &out->status)) return Malformed("status");
  if (!ReadDouble(&body, &out->latency_ms)) return Malformed("latency");
  if (!GetVarint32(&body, &out->shards_total)) {
    return Malformed("shard total");
  }
  if (!GetVarint32(&body, &out->shards_ok)) return Malformed("shards ok");
  uint64_t nerrors = 0;
  if (!GetVarint64(&body, &nerrors)) return Malformed("shard error count");
  // Each error needs >= 3 encoded bytes; bound before reserving.
  if (nerrors > body.size() / 3) {
    return Malformed("shard error count vs body size");
  }
  out->shard_errors.reserve(static_cast<size_t>(nerrors));
  for (uint64_t i = 0; i < nerrors; ++i) {
    uint32_t shard = 0;
    Status carried;
    if (!GetVarint32(&body, &shard)) return Malformed("shard error id");
    if (!GetStatus(&body, &carried)) return Malformed("shard error status");
    out->shard_errors.emplace_back(shard, std::move(carried));
  }
  uint64_t ngroups = 0;
  if (!GetVarint64(&body, &ngroups)) return Malformed("group count");
  // Each group needs >= 2 encoded bytes; bound before reserving.
  if (ngroups > body.size() / 2) {
    return Malformed("group count vs body size");
  }
  out->groups.reserve(static_cast<size_t>(ngroups));
  for (uint64_t g = 0; g < ngroups; ++g) {
    FederatedSeriesMatches group;
    std::string_view name;
    if (!GetLengthPrefixed(&body, &name)) return Malformed("group series");
    group.series.assign(name);
    uint64_t count = 0;
    if (!GetVarint64(&body, &count)) return Malformed("group match count");
    // A match needs >= 9 encoded bytes; reject counts the body cannot
    // hold before allocating for them.
    if (count > body.size() / 9) {
      return Malformed("group match count vs body size");
    }
    group.matches.resize(static_cast<size_t>(count));
    for (auto& m : group.matches) {
      uint64_t offset = 0;
      if (!GetVarint64(&body, &offset)) return Malformed("group offset");
      m.offset = static_cast<size_t>(offset);
      if (!ReadDouble(&body, &m.distance)) {
        return Malformed("group distance");
      }
    }
    out->groups.push_back(std::move(group));
  }
  KVMATCH_RETURN_NOT_OK(GetMatchStats(&body, &out->stats));
  KVMATCH_RETURN_NOT_OK(DecodeResponseTrace(&body, &out->trace));
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- Deadline budgets ----

double RemainingBudgetMs(double timeout_ms,
                         std::chrono::steady_clock::time_point received) {
  if (timeout_ms <= 0.0) return timeout_ms;  // 0 = none, <0 = expired
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - received)
          .count();
  const double remaining = timeout_ms - elapsed_ms;
  // Never round an almost-spent budget back to the "no deadline"
  // sentinel: an expired budget must stay expired.
  return remaining == 0.0 ? -1.0 : remaining;
}

}  // namespace net
}  // namespace kvmatch
