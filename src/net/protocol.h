// Wire protocol for the network front-end: length-prefixed, CRC-guarded
// binary frames carrying QueryService requests and responses over a byte
// stream.
//
// Frame layout (all integers little-endian, via common/coding):
//
//   [4B payload length] [4B masked CRC32C of payload] [payload]
//   payload = [1B frame type] [8B request id] [type-specific body]
//
// Request ids are chosen by the client and echoed by the server, so a
// client may pipeline many requests on one connection and match the
// responses as they stream back out of order. Non-OK Status results
// travel as typed kError frames carrying the StatusCode (NotFound,
// ResourceExhausted, DeadlineExceeded, ...) so the client reconstructs
// the same Status the in-process API would have returned.
//
// A query may carry its values literally, or reference a subsequence
// (offset, length) of the target series that the server extracts — the
// remote equivalent of the CLI's qoffset/qlen convention, which keeps
// "query by example" requests a few bytes instead of shipping the data
// both ways.
#ifndef KVMATCH_NET_PROTOCOL_H_
#define KVMATCH_NET_PROTOCOL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "service/query_service.h"

namespace kvmatch {
namespace net {

/// Hard cap on one frame's payload. A declared length beyond this is
/// unrecoverable (the stream offset can no longer be trusted), so the
/// decoder reports it as fatal rather than skipping the frame.
constexpr size_t kMaxPayloadBytes = 64ull << 20;

/// Frame header: 4B length + 4B CRC.
constexpr size_t kFrameHeaderBytes = 8;
/// Payload prologue: 1B type + 8B request id.
constexpr size_t kPayloadPrologueBytes = 9;

enum class FrameType : uint8_t {
  kQueryRequest = 1,   // WireQueryRequest body
  kQueryResponse = 2,  // QueryResponse body (status always OK)
  kError = 3,          // StatusCode + message; answers any request
  kStatsRequest = 4,   // empty body
  kStatsResponse = 5,  // plaintext stats dump
  kListRequest = 6,    // empty body
  kListResponse = 7,   // catalog directory: (name, length) pairs
  kPing = 8,           // empty body
  kPong = 9,           // empty body
  // Remote ingest (catalog write path over the wire). All three answer
  // with kIngestResponse on success and kError on failure.
  kCreateRequest = 10,  // WireIngestRequest body: register a new series
  kAppendRequest = 11,  // WireIngestRequest body: extend an existing series
  kDropRequest = 12,    // WireIngestRequest body (values ignored)
  kIngestResponse = 13, // IngestAck body
  /// Aborts the in-flight query whose request id equals this frame's
  /// request id (same connection). Fire-and-forget: there is no cancel
  /// ack — the cancelled query itself answers with a typed kError
  /// (Cancelled), or with its normal response if it won the race.
  kCancel = 14,         // empty body
  /// One chunk of a streamed match set: a match-list body for the given
  /// request id. Zero or more parts precede the final kQueryResponse
  /// (which then carries status/stats and no matches); parts arrive in
  /// offset order and concatenate to the exact single-frame result.
  kMatchResponsePart = 15,
  /// Cluster topology handshake: a coordinator verifies at connect time
  /// that the process behind a shard-map endpoint really is the shard the
  /// map says it is (same shard id, shard count and map fingerprint) —
  /// catching a stale map or a swapped port before any query is routed.
  kShardInfoRequest = 16,   // empty body
  kShardInfoResponse = 17,  // ShardInfo body
  /// Answer to a kQueryRequest whose series is a pattern ('*'/'?' glob),
  /// served by a coordinator: per-series match groups plus per-shard
  /// error/partial-result accounting. Exact-series queries through a
  /// coordinator answer with plain kQueryResponse frames instead, so a
  /// vanilla client cannot tell a coordinator from a single node.
  kFederatedResponse = 18,  // FederatedResponse body
};

struct Frame {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  std::string body;
};

/// A QueryRequest as it travels on the wire: either the literal query
/// values (request.query) or a by-reference (offset, length) window into
/// the named series, resolved server-side.
struct WireQueryRequest {
  QueryRequest request;
  bool by_reference = false;
  uint64_t ref_offset = 0;
  uint64_t ref_length = 0;
};

/// One row of a kListResponse.
struct SeriesInfo {
  std::string name;
  uint64_t length = 0;

  bool operator==(const SeriesInfo&) const = default;
};

/// A catalog write as it travels on the wire: the target series plus the
/// points to create it with / append to it (empty for kDropRequest).
/// Large series ship as a kCreateRequest followed by chunked
/// kAppendRequests, keeping every frame under the payload cap.
struct WireIngestRequest {
  std::string series;
  std::vector<double> values;

  bool operator==(const WireIngestRequest&) const = default;
};

/// Body of a kIngestResponse: the installed epoch and resulting length
/// (both zero for a drop).
struct IngestAck {
  uint64_t epoch = 0;
  uint64_t length = 0;

  bool operator==(const IngestAck&) const = default;
};

/// The shard id a coordinator answers kShardInfoRequest with (a
/// coordinator is an endpoint too, but owns no slice of the hash space).
constexpr uint32_t kCoordinatorShardId = 0xFFFFFFFFu;

/// The shard id a server started without a shard map answers with:
/// "not sharded, owns everything".
constexpr uint32_t kStandaloneShardId = 0xFFFFFFFEu;

/// Body of a kShardInfoResponse: the responder's place in the cluster.
struct ShardInfo {
  uint32_t shard_id = kStandaloneShardId;
  uint32_t num_shards = 0;
  /// FNV-1a of the shard map's canonical serialization; both sides of a
  /// connection must agree or routing is undefined.
  uint64_t map_fingerprint = 0;
  uint64_t series_count = 0;

  bool operator==(const ShardInfo&) const = default;
};

/// One series' slice of a federated answer. Threshold matches are in
/// ascending offset order (the executor's slice-concat contract carried
/// across the wire); top-k groups hold that series' members of the
/// global top-k in (distance, offset) order.
struct FederatedSeriesMatches {
  std::string series;
  std::vector<MatchResult> matches;

  bool operator==(const FederatedSeriesMatches&) const = default;
};

/// Body of a kFederatedResponse: a scatter-gather answer. `groups` is
/// sorted by series name; `stats` is the sum of every answering shard's
/// MatchStats. A dead or too-slow shard does not fail the query — it is
/// recorded in `shard_errors` and shards_ok < shards_total marks the
/// result as typed-partial.
struct FederatedResponse {
  Status status = Status::OK();
  double latency_ms = 0.0;
  uint32_t shards_total = 0;
  uint32_t shards_ok = 0;
  /// (shard id, what went wrong) for every shard that failed to answer.
  std::vector<std::pair<uint32_t, Status>> shard_errors;
  std::vector<FederatedSeriesMatches> groups;
  MatchStats stats;
  /// Per-shard round-trip spans plus the coordinator's own plan/merge
  /// spans, present iff the request asked for a trace.
  std::shared_ptr<QueryTrace> trace;

  bool partial() const { return shards_ok < shards_total; }
};

// ---- Frame framing ----

/// Appends the complete wire encoding of `frame` to `wire`.
void EncodeFrame(const Frame& frame, std::string* wire);

/// Incremental decoder over a received byte stream. Feed() arbitrary
/// chunks, then poll Next() until it stops producing frames.
class FrameDecoder {
 public:
  enum class Event {
    kFrame,     // *out is a complete, CRC-verified frame
    kNeedMore,  // no complete frame buffered yet
    kBadFrame,  // one frame was corrupt (CRC/prologue); it has been
                // consumed and *error set — the stream stays decodable
    kFatal,     // framing is unrecoverable (oversized declared length)
  };

  explicit FrameDecoder(size_t max_payload_bytes = kMaxPayloadBytes);

  void Feed(std::string_view data);
  Event Next(Frame* out, Status* error);

  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  bool fatal_ = false;
};

// ---- Frame bodies ----

void EncodeQueryRequestBody(const WireQueryRequest& request,
                            std::string* body);
Status DecodeQueryRequestBody(std::string_view body, WireQueryRequest* out);

void EncodeQueryResponseBody(const QueryResponse& response,
                             std::string* body);
Status DecodeQueryResponseBody(std::string_view body, QueryResponse* out);

/// Split form of EncodeQueryResponseBody, for the server's serialize-span
/// chicken-and-egg: the prefix (status/latency/matches/stats) is encoded
/// and timed first, then the trace — now including the serialize span —
/// is appended. Prefix + AppendQueryResponseTrace(response.trace.get())
/// is byte-identical to EncodeQueryResponseBody.
void EncodeQueryResponsePrefix(const QueryResponse& response,
                               std::string* body);
/// Appends the optional trace section (a has-trace byte, then the spans).
/// `trace` may be null → "no trace".
void AppendQueryResponseTrace(const QueryTrace* trace, std::string* body);

/// Body of one kMatchResponsePart: a bare match list (the frame's request
/// id ties it to its query).
void EncodeMatchPartBody(std::span<const MatchResult> matches,
                         std::string* body);
/// Appends the part's matches to `*out` (streaming reassembly).
Status DecodeMatchPartBody(std::string_view body,
                           std::vector<MatchResult>* out);

void EncodeErrorBody(const Status& status, std::string* body);
/// Reconstructs the Status an error frame carries. Returns non-OK only
/// when `body` itself is malformed; the carried status lands in *out.
Status DecodeErrorBody(std::string_view body, Status* out);

void EncodeListResponseBody(const std::vector<SeriesInfo>& series,
                            std::string* body);
Status DecodeListResponseBody(std::string_view body,
                              std::vector<SeriesInfo>* out);

void EncodeIngestRequestBody(const WireIngestRequest& request,
                             std::string* body);
Status DecodeIngestRequestBody(std::string_view body,
                               WireIngestRequest* out);

void EncodeIngestResponseBody(const IngestAck& ack, std::string* body);
Status DecodeIngestResponseBody(std::string_view body, IngestAck* out);

void EncodeShardInfoBody(const ShardInfo& info, std::string* body);
Status DecodeShardInfoBody(std::string_view body, ShardInfo* out);

void EncodeFederatedResponseBody(const FederatedResponse& response,
                                 std::string* body);
Status DecodeFederatedResponseBody(std::string_view body,
                                   FederatedResponse* out);

/// The deadline a request should carry on its next hop: the budget it
/// arrived with minus the time already burned at this hop. Wire deadlines
/// are relative budgets, not absolute instants — each forwarder must
/// subtract its own elapsed time or queue/transfer time would be counted
/// once per hop. Returns 0 for "no deadline" inputs and a negative value
/// (meaning "already expired") once the budget is gone.
double RemainingBudgetMs(double timeout_ms,
                         std::chrono::steady_clock::time_point received);

/// Stable StatusCode <-> wire mapping (independent of the enum's in-memory
/// values, so old clients survive StatusCode reorderings).
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

}  // namespace net
}  // namespace kvmatch

#endif  // KVMATCH_NET_PROTOCOL_H_
