#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace kvmatch {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

/// Unwraps a kError frame into the Status it carries, normalizing the
/// ill-formed cases (undecodable body, carried OK) to non-OK errors.
Status CarriedError(const Frame& frame) {
  Status carried;
  if (Status st = DecodeErrorBody(frame.body, &carried); !st.ok()) return st;
  if (carried.ok()) return Status::Internal("server sent an OK error frame");
  return carried;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    return Status::InvalidArgument("cannot resolve " + host);
  }
  int fd = -1;
  Status last = Status::IOError("no addresses for " + host);
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, 0);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) return last;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::Client(int fd) : fd_(fd) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Client::SendFrame(FrameType type, std::string body) {
  Frame frame;
  frame.type = type;
  frame.request_id = next_id_++;
  frame.body = std::move(body);
  std::string wire;
  EncodeFrame(frame, &wire);
  KVMATCH_RETURN_NOT_OK(WriteAll(fd_, wire));
  return frame.request_id;
}

Result<uint64_t> Client::SendRequest(const QueryRequest& request) {
  WireQueryRequest wire_request;
  wire_request.request = request;
  return SendRequest(wire_request);
}

Result<uint64_t> Client::SendRequest(const WireQueryRequest& request) {
  std::string body;
  EncodeQueryRequestBody(request, &body);
  return SendFrame(FrameType::kQueryRequest, std::move(body));
}

void Client::Forget(uint64_t id) {
  const bool had_final = parked_.erase(id) > 0;
  parked_parts_.erase(id);
  // Only tombstone ids whose terminal frame is still owed; a request that
  // already answered will never send another frame.
  if (!had_final) forgotten_.insert(id);
}

Result<Frame> Client::WaitFrame(uint64_t id) {
  if (id != 0) {
    if (auto it = parked_.find(id); it != parked_.end()) {
      Frame frame = std::move(it->second);
      parked_.erase(it);
      return frame;
    }
  } else if (!parked_.empty()) {
    auto it = parked_.begin();
    Frame frame = std::move(it->second);
    parked_.erase(it);
    return frame;
  }
  const auto deadline =
      wait_timeout_ms_ > 0.0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        wait_timeout_ms_))
          : std::chrono::steady_clock::time_point::max();
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    Status error;
    const FrameDecoder::Event event = decoder_.Next(&frame, &error);
    if (event == FrameDecoder::Event::kBadFrame ||
        event == FrameDecoder::Event::kFatal) {
      return Status::Corruption("response stream: " + error.message());
    }
    if (event == FrameDecoder::Event::kFrame) {
      if (frame.type == FrameType::kError && frame.request_id == 0) {
        // Stream-level error from the server (it could not attribute the
        // failure to a request we could match).
        return CarriedError(frame);
      }
      if (frame.type == FrameType::kMatchResponsePart) {
        // A streamed chunk, never a "final" frame: accumulate it for its
        // request (whether or not that is the id being waited on) and
        // keep reading. Chunks of an abandoned request are dropped.
        if (forgotten_.count(frame.request_id) > 0) continue;
        if (Status st = DecodeMatchPartBody(
                frame.body, &parked_parts_[frame.request_id]);
            !st.ok()) {
          return Status::Corruption("response stream: " + st.message());
        }
        continue;
      }
      // A final frame. Terminal errors never carry matches, so any
      // chunks streamed before the failure are dead weight — erase them
      // now instead of waiting for a WaitResponse that an abandoning
      // caller (cancel-and-move-on) will never make.
      if (frame.type == FrameType::kError) {
        parked_parts_.erase(frame.request_id);
      }
      if (auto it = forgotten_.find(frame.request_id);
          it != forgotten_.end()) {
        // Terminal frame of an abandoned request: the tombstone retires.
        forgotten_.erase(it);
        parked_parts_.erase(frame.request_id);
        continue;
      }
      if (frame.request_id == id || id == 0) return frame;
      parked_[frame.request_id] = std::move(frame);
      continue;
    }
    if (deadline != std::chrono::steady_clock::time_point::max()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("no response within the wait"
                                        " budget");
      }
      const int wait_ms = static_cast<int>(std::min<int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
                  .count() +
              1,
          1000));
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (ready == 0) continue;  // re-check the deadline
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<QueryResponse> Client::AssembleResponse(Result<Frame> frame,
                                               uint64_t id) {
  // A failed wait consumes nothing: a DeadlineExceeded wait may be
  // retried (or the id Forgotten), and either path owns the cleanup.
  if (!frame.ok()) return frame.status();
  // The final frame is here: consume the accumulated stream chunks. On
  // the error paths below they are dropped (the server never streams
  // before an error, so this is purely defensive).
  std::vector<MatchResult> parts;
  if (auto it = parked_parts_.find(id); it != parked_parts_.end()) {
    parts = std::move(it->second);
    parked_parts_.erase(it);
  }
  if (frame->type == FrameType::kError) {
    QueryResponse response;
    response.status = CarriedError(*frame);
    return response;
  }
  if (frame->type != FrameType::kQueryResponse) {
    return Status::Corruption("unexpected frame type answering a query");
  }
  QueryResponse response;
  KVMATCH_RETURN_NOT_OK(DecodeQueryResponseBody(frame->body, &response));
  if (!parts.empty()) {
    // Streamed: the final frame is matchless; the chunks, concatenated in
    // arrival order, are the full offset-ordered match list.
    parts.insert(parts.end(), response.matches.begin(),
                 response.matches.end());
    response.matches = std::move(parts);
  }
  return response;
}

Result<QueryResponse> Client::WaitResponse(uint64_t id) {
  return AssembleResponse(WaitFrame(id), id);
}

Result<std::pair<uint64_t, QueryResponse>> Client::WaitAnyResponse() {
  auto frame = WaitFrame(0);
  if (!frame.ok()) return frame.status();
  const uint64_t id = frame->request_id;
  auto response = AssembleResponse(std::move(frame), id);
  if (!response.ok()) return response.status();
  return std::make_pair(id, std::move(response).value());
}

Status Client::Cancel(uint64_t id) {
  Frame frame;
  frame.type = FrameType::kCancel;
  frame.request_id = id;  // targets the query with this id, not a new one
  std::string wire;
  EncodeFrame(frame, &wire);
  return WriteAll(fd_, wire);
}

Result<QueryResponse> Client::Query(const QueryRequest& request) {
  auto id = SendRequest(request);
  if (!id.ok()) return id.status();
  return WaitResponse(*id);
}

Result<IngestAck> Client::IngestRoundTrip(FrameType type,
                                          const std::string& name,
                                          std::span<const double> values) {
  WireIngestRequest request;
  request.series = name;
  request.values.assign(values.begin(), values.end());
  std::string body;
  EncodeIngestRequestBody(request, &body);
  auto id = SendFrame(type, std::move(body));
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kIngestResponse) {
    return Status::Corruption("unexpected frame type answering ingest");
  }
  IngestAck ack;
  KVMATCH_RETURN_NOT_OK(DecodeIngestResponseBody(frame->body, &ack));
  return ack;
}

Result<IngestAck> Client::CreateSeries(const std::string& name,
                                       std::span<const double> values) {
  return IngestRoundTrip(FrameType::kCreateRequest, name, values);
}

Result<IngestAck> Client::AppendSeries(const std::string& name,
                                       std::span<const double> values) {
  return IngestRoundTrip(FrameType::kAppendRequest, name, values);
}

Status Client::DropSeries(const std::string& name) {
  auto ack = IngestRoundTrip(FrameType::kDropRequest, name, {});
  return ack.status();
}

Result<std::string> Client::StatsText() {
  auto id = SendFrame(FrameType::kStatsRequest, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kStatsResponse) {
    return Status::Corruption("unexpected frame type answering STATS");
  }
  return std::move(frame->body);
}

Result<std::vector<SeriesInfo>> Client::ListSeries() {
  auto id = SendFrame(FrameType::kListRequest, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kListResponse) {
    return Status::Corruption("unexpected frame type answering LIST");
  }
  std::vector<SeriesInfo> series;
  KVMATCH_RETURN_NOT_OK(DecodeListResponseBody(frame->body, &series));
  return series;
}

Result<ShardInfo> Client::GetShardInfo() {
  auto id = SendFrame(FrameType::kShardInfoRequest, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kShardInfoResponse) {
    return Status::Corruption("unexpected frame type answering SHARDINFO");
  }
  ShardInfo info;
  KVMATCH_RETURN_NOT_OK(DecodeShardInfoBody(frame->body, &info));
  return info;
}

Result<FederatedResponse> Client::FederatedQuery(
    const WireQueryRequest& request) {
  auto id = SendRequest(request);
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) {
    FederatedResponse response;
    response.status = CarriedError(*frame);
    return response;
  }
  if (frame->type != FrameType::kFederatedResponse) {
    return Status::Corruption(
        "unexpected frame type answering a federated query");
  }
  FederatedResponse response;
  KVMATCH_RETURN_NOT_OK(DecodeFederatedResponseBody(frame->body, &response));
  return response;
}

Status Client::Ping() {
  auto id = SendFrame(FrameType::kPing, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kPong) {
    return Status::Corruption("unexpected frame type answering PING");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace kvmatch
