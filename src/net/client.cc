#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace kvmatch {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

/// Unwraps a kError frame into the Status it carries, normalizing the
/// ill-formed cases (undecodable body, carried OK) to non-OK errors.
Status CarriedError(const Frame& frame) {
  Status carried;
  if (Status st = DecodeErrorBody(frame.body, &carried); !st.ok()) return st;
  if (carried.ok()) return Status::Internal("server sent an OK error frame");
  return carried;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    return Status::InvalidArgument("cannot resolve " + host);
  }
  int fd = -1;
  Status last = Status::IOError("no addresses for " + host);
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, 0);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) return last;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::Client(int fd) : fd_(fd) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Client::SendFrame(FrameType type, std::string body) {
  Frame frame;
  frame.type = type;
  frame.request_id = next_id_++;
  frame.body = std::move(body);
  std::string wire;
  EncodeFrame(frame, &wire);
  KVMATCH_RETURN_NOT_OK(WriteAll(fd_, wire));
  return frame.request_id;
}

Result<uint64_t> Client::SendRequest(const QueryRequest& request) {
  WireQueryRequest wire_request;
  wire_request.request = request;
  return SendRequest(wire_request);
}

Result<uint64_t> Client::SendRequest(const WireQueryRequest& request) {
  std::string body;
  EncodeQueryRequestBody(request, &body);
  return SendFrame(FrameType::kQueryRequest, std::move(body));
}

Result<Frame> Client::WaitFrame(uint64_t id) {
  if (auto it = parked_.find(id); it != parked_.end()) {
    Frame frame = std::move(it->second);
    parked_.erase(it);
    return frame;
  }
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    Status error;
    const FrameDecoder::Event event = decoder_.Next(&frame, &error);
    if (event == FrameDecoder::Event::kBadFrame ||
        event == FrameDecoder::Event::kFatal) {
      return Status::Corruption("response stream: " + error.message());
    }
    if (event == FrameDecoder::Event::kFrame) {
      if (frame.type == FrameType::kError && frame.request_id == 0) {
        // Stream-level error from the server (it could not attribute the
        // failure to a request we could match).
        return CarriedError(frame);
      }
      if (frame.type == FrameType::kMatchResponsePart) {
        // A streamed chunk, never a "final" frame: accumulate it for its
        // request (whether or not that is the id being waited on) and
        // keep reading.
        if (Status st = DecodeMatchPartBody(
                frame.body, &parked_parts_[frame.request_id]);
            !st.ok()) {
          return Status::Corruption("response stream: " + st.message());
        }
        continue;
      }
      if (frame.request_id == id) return frame;
      parked_[frame.request_id] = std::move(frame);
      continue;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<QueryResponse> Client::WaitResponse(uint64_t id) {
  auto frame = WaitFrame(id);
  // Any accumulated stream chunks for this id are consumed here — on the
  // error paths they are dropped (the server never streams before an
  // error, so this is purely defensive).
  std::vector<MatchResult> parts;
  if (auto it = parked_parts_.find(id); it != parked_parts_.end()) {
    parts = std::move(it->second);
    parked_parts_.erase(it);
  }
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) {
    QueryResponse response;
    response.status = CarriedError(*frame);
    return response;
  }
  if (frame->type != FrameType::kQueryResponse) {
    return Status::Corruption("unexpected frame type answering a query");
  }
  QueryResponse response;
  KVMATCH_RETURN_NOT_OK(DecodeQueryResponseBody(frame->body, &response));
  if (!parts.empty()) {
    // Streamed: the final frame is matchless; the chunks, concatenated in
    // arrival order, are the full offset-ordered match list.
    parts.insert(parts.end(), response.matches.begin(),
                 response.matches.end());
    response.matches = std::move(parts);
  }
  return response;
}

Status Client::Cancel(uint64_t id) {
  Frame frame;
  frame.type = FrameType::kCancel;
  frame.request_id = id;  // targets the query with this id, not a new one
  std::string wire;
  EncodeFrame(frame, &wire);
  return WriteAll(fd_, wire);
}

Result<QueryResponse> Client::Query(const QueryRequest& request) {
  auto id = SendRequest(request);
  if (!id.ok()) return id.status();
  return WaitResponse(*id);
}

Result<IngestAck> Client::IngestRoundTrip(FrameType type,
                                          const std::string& name,
                                          std::span<const double> values) {
  WireIngestRequest request;
  request.series = name;
  request.values.assign(values.begin(), values.end());
  std::string body;
  EncodeIngestRequestBody(request, &body);
  auto id = SendFrame(type, std::move(body));
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kIngestResponse) {
    return Status::Corruption("unexpected frame type answering ingest");
  }
  IngestAck ack;
  KVMATCH_RETURN_NOT_OK(DecodeIngestResponseBody(frame->body, &ack));
  return ack;
}

Result<IngestAck> Client::CreateSeries(const std::string& name,
                                       std::span<const double> values) {
  return IngestRoundTrip(FrameType::kCreateRequest, name, values);
}

Result<IngestAck> Client::AppendSeries(const std::string& name,
                                       std::span<const double> values) {
  return IngestRoundTrip(FrameType::kAppendRequest, name, values);
}

Status Client::DropSeries(const std::string& name) {
  auto ack = IngestRoundTrip(FrameType::kDropRequest, name, {});
  return ack.status();
}

Result<std::string> Client::StatsText() {
  auto id = SendFrame(FrameType::kStatsRequest, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kStatsResponse) {
    return Status::Corruption("unexpected frame type answering STATS");
  }
  return std::move(frame->body);
}

Result<std::vector<SeriesInfo>> Client::ListSeries() {
  auto id = SendFrame(FrameType::kListRequest, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kListResponse) {
    return Status::Corruption("unexpected frame type answering LIST");
  }
  std::vector<SeriesInfo> series;
  KVMATCH_RETURN_NOT_OK(DecodeListResponseBody(frame->body, &series));
  return series;
}

Status Client::Ping() {
  auto id = SendFrame(FrameType::kPing, "");
  if (!id.ok()) return id.status();
  auto frame = WaitFrame(*id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return CarriedError(*frame);
  if (frame->type != FrameType::kPong) {
    return Status::Corruption("unexpected frame type answering PING");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace kvmatch
