#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/event_log.h"

namespace kvmatch {
namespace net {

namespace {

/// epoll_wait timeout: upper bound on the latency of periodic loop work
/// (idle reaping, drain progress, stop_-flag observation).
constexpr int kTickMs = 50;
/// Abandon a peer that stops draining its responses during Stop() (and
/// expire refused-connection courtesy frames) after this stall.
constexpr int kStopWriteGraceMs = 5000;

/// Bytes needed to tell a plain-HTTP scrape from a binary frame. An HTTP
/// verb read as a little-endian frame length would be absurd (e.g. "GET "
/// ≈ 542 MB), far past kMaxPayloadBytes — the two protocols cannot
/// collide within the cap.
constexpr size_t kHttpSniffBytes = 4;
/// A scrape request's head must fit this; anything longer is dropped.
constexpr size_t kMaxHttpHeadBytes = 16 * 1024;

/// Bytes recv'd from one connection per readiness event before yielding
/// to the rest of the loop (level-triggered epoll re-fires for the rest).
constexpr size_t kMaxReadPerEvent = 256 * 1024;
/// Bytes written to one connection per flush before the loop re-kicks
/// itself — one fast consumer must not starve the others.
constexpr size_t kMaxWritePerFlush = 4 * 1024 * 1024;
/// Outbox frames coalesced into one writev round.
constexpr int kMaxWriteIov = 16;
/// accept4() calls per listen-readiness event, for the same fairness.
constexpr int kMaxAcceptsPerEvent = 64;

bool LooksLikeHttp(std::string_view prelude) {
  return prelude.substr(0, 4) == "GET " || prelude.substr(0, 4) == "HEAD" ||
         prelude.substr(0, 4) == "POST" || prelude.substr(0, 4) == "PUT " ||
         prelude.substr(0, 4) == "DELE" || prelude.substr(0, 4) == "OPTI";
}

/// The client asked to reuse the connection: scan the header lines after
/// the request line for `Connection: keep-alive` (case-insensitive, as
/// HTTP demands). HTTP/1.1 technically defaults to keep-alive, but this
/// responder predates that nuance and clients of record (including the
/// tests) rely on close-by-default — so only an explicit opt-in persists.
bool WantsKeepAlive(std::string_view head) {
  size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos && pos + 2 < head.size()) {
    pos += 2;
    const size_t end = head.find("\r\n", pos);
    std::string_view line =
        head.substr(pos, end == std::string_view::npos ? std::string_view::npos
                                                       : end - pos);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string_view name = line.substr(0, colon);
      std::string_view value = line.substr(colon + 1);
      auto lower = [](std::string_view s) {
        std::string out(s);
        for (char& c : out) {
          c = static_cast<char>(
              std::tolower(static_cast<unsigned char>(c)));
        }
        return out;
      };
      if (lower(name) == "connection" &&
          lower(value).find("keep-alive") != std::string::npos) {
        return true;
      }
    }
    pos = end;
  }
  return false;
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Server::Server(Catalog* catalog, QueryService* service, Options options)
    : catalog_(catalog),
      service_(service),
      registry_(service->stats_registry()),
      options_(std::move(options)) {}

Server::Server(StatsRegistry* registry, Options options)
    : catalog_(nullptr),
      service_(nullptr),
      registry_(registry),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(options_.port);
  if (::getaddrinfo(options_.bind_address.c_str(), port_str.c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    return Status::InvalidArgument("cannot resolve bind address " +
                                   options_.bind_address);
  }

  listen_fd_ = ::socket(resolved->ai_family, resolved->ai_socktype, 0);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(resolved);
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, resolved->ai_addr, resolved->ai_addrlen) < 0) {
    ::freeaddrinfo(resolved);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("bind " + options_.bind_address + ":" + port_str);
  }
  ::freeaddrinfo(resolved);
  // A deep backlog: a C10k connect storm arrives faster than one loop
  // iteration can accept, and the overflow must queue, not get RST.
  if (::listen(listen_fd_, 1024) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("listen");
  }
  if (Status st = SetNonBlocking(listen_fd_); !st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  loop_ = std::make_unique<EventLoop>();
  if (Status st = loop_->Init(); !st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    loop_.reset();
    return st;
  }
  listen_token_ =
      loop_->Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
  if (listen_token_ == 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    loop_.reset();
    return Status::IOError("cannot register listen socket with epoll");
  }

  stop_.store(false);
  draining_ = false;
  blocking_stop_ = false;
  blocking_thread_ = std::thread([this] { BlockingWorker(); });
  loop_thread_ =
      std::thread([this] { loop_->Run(kTickMs, [this] { OnTick(); }); });
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stop_.store(true);
  // Seal intake on the loop thread: once EnterDrain has run, no new
  // connection or request can register, so the pending counter below can
  // only fall — the drain wait cannot be raced by a late submission (the
  // flaw the old thread-per-connection Stop() had to re-sweep around).
  std::atomic<bool> sealed{false};
  loop_->Post([this, &sealed] {
    EnterDrain();
    sealed.store(true, std::memory_order_release);
  });
  while (!sealed.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Bounded drain: give in-flight queries drain_timeout_ms to finish on
  // their own, then cancel the stragglers through their tokens — they
  // abort at the next probe/slice checkpoint and their Cancelled
  // responses flush like any other, so the connection wait below never
  // hangs on a runaway scan. drain_timeout_ms == 0 preserves the old
  // semantics: wait for completion forever, cancelling nothing.
  if (options_.drain_timeout_ms > 0.0) {
    const auto drain_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.drain_timeout_ms));
    while (total_pending_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    while (total_pending_.load(std::memory_order_acquire) > 0) {
      CancelAllInFlight();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  } else {
    while (total_pending_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // Every response is now enqueued; the loop's ticks flush and close each
  // connection (abandoning peers that stall past kStopWriteGraceMs) and
  // let suspended blocking work resume and finish.
  while (ActiveConnections() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(blocking_mu_);
    blocking_stop_ = true;
  }
  blocking_cv_.notify_all();
  if (blocking_thread_.joinable()) blocking_thread_.join();
  loop_->RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Courtesy refusals the loop did not finish flushing: just close them.
  for (auto& [token, refusal] : refusals_) ::close(refusal->fd);
  refusals_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  loop_.reset();
  started_ = false;
  // Flight recorder last: the ring now includes everything the drain
  // above produced (final commits, evictions, purges).
  if (options_.dump_events_on_stop && options_.event_log != nullptr) {
    for (const auto& line : options_.event_log->RingLines()) {
      if (options_.event_dump) {
        options_.event_dump(line);
      } else {
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    }
  }
}

void Server::EnterDrain() {
  draining_ = true;
  // Stop accepting: deregister interest but keep the socket bound, so
  // late connects queue in the backlog instead of getting RST while the
  // drain completes.
  if (listen_token_ != 0) loop_->Mod(listen_token_, 0);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, conn] : conns_) conns.push_back(conn);
  }
  const auto now = std::chrono::steady_clock::now();
  for (const auto& conn : conns) {
    if (conn->dead) continue;
    conn->input_done = true;
    {
      // Restart the write-stall grace clock: the watchdog measures the
      // stall from shutdown, not from whenever the peer last read.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->last_write_progress = now;
    }
    UpdateInterest(conn);
    if (ReadyToClose(conn)) CloseConnection(conn);
  }
}

void Server::CancelAllInFlight() {
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, conn] : conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      for (const auto& [rid, token] : conn->inflight) {
        tokens.push_back(token);
      }
    }
  }
  for (auto& token : tokens) token->Cancel();
}

size_t Server::ActiveConnections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

std::string Server::StatsText() const {
  // Via QueryService::Stats() (not the registry directly) so the pool's
  // queue-depth / busy-worker gauges are populated.
  std::string out = StatsToText(service_->Stats());
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& [id, conn] : conns_) {
    uint64_t requests = 0;
    {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      requests = conn->requests;
    }
    const double age =
        std::chrono::duration<double>(now - conn->opened).count();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "kvmatch_connection_requests_total{conn=\"%llu\"} %llu\n"
                  "kvmatch_connection_qps{conn=\"%llu\"} %.6g\n"
                  "kvmatch_connection_age_seconds{conn=\"%llu\"} %.6g\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(id),
                  age > 0.0 ? static_cast<double>(requests) / age : 0.0,
                  static_cast<unsigned long long>(id), age);
    out.append(buf);
  }
  return out;
}

// --------------------------------------------------------------- accept

void Server::OnAcceptable() {
  if (draining_) return;
  for (int i = 0; i < kMaxAcceptsPerEvent; ++i) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: level-triggered EPOLLIN would spin the loop
        // hot on the un-accepted backlog, so back off until the next tick
        // (closing connections is what frees fds, and closes happen here
        // on the loop).
        loop_->Mod(listen_token_, 0);
        accept_paused_ = true;
      }
      return;  // EAGAIN or a hard error: nothing more to accept now
    }

    bool over_limit = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      over_limit = conns_.size() >= options_.max_connections;
    }
    if (over_limit) {
      RefuseConnection(fd);
      continue;
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->opened = std::chrono::steady_clock::now();
    conn->last_activity = conn->opened;
    conn->last_write_progress = conn->opened;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    conn->token = loop_->Add(
        fd, EPOLLIN,
        [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
    if (conn->token == 0) {
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.erase(conn->id);
      }
      ::close(fd);
      continue;
    }
    registry_->RecordConnectionOpened();
  }
}

void Server::RefuseConnection(int fd) {
  registry_->RecordConnectionRejected();
  Frame frame;
  frame.type = FrameType::kError;
  EncodeErrorBody(Status::ResourceExhausted("connection limit reached"),
                  &frame.body);
  std::string wire;
  EncodeFrame(frame, &wire);
  // Best-effort courtesy: usually the whole frame fits the fresh socket
  // buffer and the refusal costs one syscall.
  size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + written,
                             wire.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      ::close(fd);
      return;
    }
    written += static_cast<size_t>(n);
  }
  if (written == wire.size()) {
    ::close(fd);
    return;
  }
  // The rest flushes on EPOLLOUT, with a bounded grace: a refusal never
  // becomes a tracked connection and never blocks the loop.
  auto refusal = std::make_shared<Refusal>();
  refusal->fd = fd;
  refusal->wire = std::move(wire);
  refusal->written = written;
  refusal->since = std::chrono::steady_clock::now();
  refusal->token = loop_->Add(
      fd, EPOLLOUT, [this, refusal](uint32_t) { FlushRefusal(refusal); });
  if (refusal->token == 0) {
    ::close(fd);
    return;
  }
  refusals_[refusal->token] = refusal;
}

void Server::FlushRefusal(const std::shared_ptr<Refusal>& refusal) {
  while (refusal->written < refusal->wire.size()) {
    const ssize_t n =
        ::send(refusal->fd, refusal->wire.data() + refusal->written,
               refusal->wire.size() - refusal->written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      break;  // peer gone: give up on the courtesy
    }
    refusal->written += static_cast<size_t>(n);
  }
  loop_->Del(refusal->token);
  ::close(refusal->fd);
  refusals_.erase(refusal->token);
}

// ----------------------------------------------------------------- read

void Server::OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                               uint32_t events) {
  if (conn->dead) return;
  // Read before write: an EPOLLIN|EPOLLOUT batch should submit the next
  // pipelined request before draining responses, and EPOLLHUP/EPOLLERR
  // surface through recv() (EOF / the pending error) on the read path.
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) OnReadable(conn);
  if (conn->dead) return;
  if (events & EPOLLOUT) FlushOutbox(conn);
}

void Server::OnReadable(const std::shared_ptr<Connection>& conn) {
  // Suspended (blocking work in flight, backpressure, or input finished):
  // interest is disarmed, but EPOLLHUP/EPOLLERR still land here — the
  // socket stays untouched until the suspension lifts.
  if (conn->dead || conn->busy || conn->input_done || conn->reads_paused) {
    return;
  }
  char buf[64 * 1024];
  size_t consumed = 0;
  bool eof = false;
  while (consumed < kMaxReadPerEvent) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);
      return;
    }
    consumed += static_cast<size_t>(n);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->last_activity = std::chrono::steady_clock::now();
    }
    const std::string_view chunk(buf, static_cast<size_t>(n));
    if (!conn->sniffed) {
      // Protocol sniff: the first kHttpSniffBytes decide whether this
      // connection speaks binary frames or plain HTTP (a Prometheus
      // scrape, a curl /healthz). Until decided, bytes accumulate.
      conn->http_buf.append(chunk);
      if (conn->http_buf.size() < kHttpSniffBytes) continue;
      conn->sniffed = true;
      conn->http_mode = LooksLikeHttp(conn->http_buf);
      if (!conn->http_mode) {
        conn->decoder.Feed(conn->http_buf);
        conn->http_buf.clear();
        conn->http_buf.shrink_to_fit();
      }
    } else if (conn->http_mode) {
      conn->http_buf.append(chunk);
    } else {
      conn->decoder.Feed(chunk);
    }
    ProcessInput(conn);
    if (conn->dead) return;
    if (conn->busy || conn->input_done) break;
    // Backpressure: a slow reader with a deep pipeline has queued past
    // the cap — stop taking new requests until the outbox drains below
    // half of it (FlushOutbox resumes).
    if (options_.max_outbox_bytes > 0) {
      bool over = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        over = conn->outbox_bytes >= options_.max_outbox_bytes;
      }
      if (over) {
        conn->reads_paused = true;
        registry_->RecordNetReadPaused();
        break;
      }
    }
  }
  if (eof) {
    conn->input_done = true;
    if (ReadyToClose(conn)) {
      CloseConnection(conn);
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::ProcessInput(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || !conn->sniffed) return;
  if (conn->http_mode) {
    ProcessHttp(conn);
    return;
  }
  // A handler may suspend the connection (RunBlocking) or finish its
  // input (fatal framing, drain): both stop the dispatch with the
  // remaining frames left buffered in the decoder for later (or never).
  while (!conn->busy && !conn->dead && !conn->input_done) {
    Frame frame;
    Status error;
    const FrameDecoder::Event event = conn->decoder.Next(&frame, &error);
    if (event == FrameDecoder::Event::kNeedMore) break;
    if (event == FrameDecoder::Event::kFrame) {
      HandleFrame(conn, std::move(frame));
      continue;
    }
    // kBadFrame / kFatal: answer with a typed error; the request id is
    // unrecoverable from a corrupt payload, so 0 means "stream-level".
    registry_->RecordProtocolError();
    SendError(conn, 0, error);
    if (event == FrameDecoder::Event::kFatal) {
      // Framing offset lost: stop reading; the connection closes once
      // the error frame (and any owed responses) have flushed.
      conn->input_done = true;
      UpdateInterest(conn);
    }
  }
}

void Server::ProcessHttp(const std::shared_ptr<Connection>& conn) {
  while (!conn->dead && !conn->input_done) {
    if (conn->http_buf.size() > kMaxHttpHeadBytes) {
      CloseConnection(conn);  // not a scrape
      return;
    }
    const size_t head_end = conn->http_buf.find("\r\n\r\n");
    if (head_end == std::string::npos) return;  // head still arriving
    const bool keep_alive =
        HandleHttp(conn, std::string_view(conn->http_buf).substr(0, head_end));
    conn->http_buf.erase(0, head_end + 4);
    if (!keep_alive) {
      conn->input_done = true;
      UpdateInterest(conn);
      return;  // the response flushes, then the connection closes
    }
    // Keep-alive: loop in case the scraper pipelined another request.
  }
}

bool Server::HandleHttp(const std::shared_ptr<Connection>& conn,
                        std::string_view head) {
  // Request line only; the sole header that matters is Connection.
  std::string_view line = head.substr(0, head.find("\r\n"));
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  std::string_view method, target;
  if (sp1 != std::string_view::npos && sp2 != std::string_view::npos &&
      sp2 > sp1) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);  // scrape params are ignored
  }

  int code = 200;
  const char* reason = "OK";
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET" && method != "HEAD") {
    code = 405;
    reason = "Method Not Allowed";
    body = "method not allowed\n";
  } else if (target == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = StatsText();
  } else if (target == "/healthz") {
    body = "ok\n";
  } else {
    code = 404;
    reason = "Not Found";
    body = "not found\n";
  }
  // Close by default (what one-shot scripted clients expect); persist
  // only when the scraper explicitly asked — and never across a 405,
  // whose request may carry a body this parser does not consume.
  const bool keep_alive =
      (method == "GET" || method == "HEAD") && WantsKeepAlive(head);

  registry_->RecordHttpRequest();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->requests += 1;
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: %s\r\n"
                "\r\n",
                code, reason, content_type, body.size(),
                keep_alive ? "keep-alive" : "close");
  std::string wire(header);
  if (method != "HEAD") wire += body;
  EnqueueRaw(conn, std::move(wire));
  return keep_alive;
}

// ---------------------------------------------------------------- write

void Server::Enqueue(const std::shared_ptr<Connection>& conn,
                     const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  EnqueueRaw(conn, std::move(wire));
}

void Server::EnqueueRaw(const std::shared_ptr<Connection>& conn,
                        std::string wire) {
  bool need_kick = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->outbox_bytes += wire.size();
    registry_->RecordNetOutboxBytes(static_cast<int64_t>(wire.size()));
    conn->outbox.push_back(std::move(wire));
    conn->last_activity = std::chrono::steady_clock::now();
    if (!conn->kick_pending) {
      conn->kick_pending = true;
      need_kick = true;
    }
  }
  if (need_kick) {
    loop_->Post([this, conn] { KickFlush(conn); });
  }
}

void Server::KickFlush(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->kick_pending = false;
  }
  if (!conn->dead) FlushOutbox(conn);
}

void Server::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  size_t flushed = 0;
  for (;;) {
    // Coalesce queued frames into one writev round: with TCP_NODELAY on,
    // per-frame send() would put each tiny streamed chunk in its own
    // packet — batched iovecs keep the syscall AND packet count flat.
    // The iovecs point into outbox strings; that is safe across the
    // unlock because only this (loop) thread pops or clears the deque,
    // workers only push_back, and deque growth never moves elements.
    struct iovec iov[kMaxWriteIov];
    int iovcnt = 0;
    size_t batch_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      size_t skip = conn->front_written;
      for (const std::string& w : conn->outbox) {
        if (iovcnt == kMaxWriteIov) break;
        iov[iovcnt].iov_base = const_cast<char*>(w.data()) + skip;
        iov[iovcnt].iov_len = w.size() - skip;
        batch_bytes += w.size() - skip;
        skip = 0;
        ++iovcnt;
      }
    }
    if (iovcnt == 0) break;  // drained

    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn->want_write = true;
        UpdateInterest(conn);
        return;
      }
      CloseConnection(conn);
      return;
    }

    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->outbox_bytes -= static_cast<size_t>(n);
      const auto now = std::chrono::steady_clock::now();
      conn->last_activity = now;
      conn->last_write_progress = now;
      size_t remaining = static_cast<size_t>(n);
      while (remaining > 0) {
        std::string& front = conn->outbox.front();
        const size_t left = front.size() - conn->front_written;
        if (remaining >= left) {
          remaining -= left;
          conn->front_written = 0;
          conn->outbox.pop_front();
        } else {
          conn->front_written += remaining;
          remaining = 0;
        }
      }
    }
    registry_->RecordNetOutboxBytes(-n);
    flushed += static_cast<size_t>(n);
    MaybeResumeReads(conn);

    if (static_cast<size_t>(n) < batch_bytes) {
      // Kernel buffer full mid-batch: EPOLLOUT re-drives the rest.
      conn->want_write = true;
      UpdateInterest(conn);
      return;
    }
    if (flushed >= kMaxWritePerFlush) {
      // Fairness cap: yield the loop to other connections and come back
      // through a self-kick.
      bool need_kick = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->kick_pending) {
          conn->kick_pending = true;
          need_kick = true;
        }
      }
      if (need_kick) {
        loop_->Post([this, conn] { KickFlush(conn); });
      }
      return;
    }
  }
  // Outbox empty: disarm EPOLLOUT, lift backpressure, and perform the
  // deferred close of a connection whose input already finished.
  conn->want_write = false;
  MaybeResumeReads(conn);
  UpdateInterest(conn);
  if (conn->input_done && ReadyToClose(conn)) CloseConnection(conn);
}

void Server::MaybeResumeReads(const std::shared_ptr<Connection>& conn) {
  if (!conn->reads_paused || conn->dead) return;
  bool below = true;
  if (options_.max_outbox_bytes > 0) {
    std::lock_guard<std::mutex> lock(conn->mu);
    below = conn->outbox_bytes <= options_.max_outbox_bytes / 2;
  }
  if (below) {
    conn->reads_paused = false;
    UpdateInterest(conn);
  }
}

// ------------------------------------------------------------ lifecycle

void Server::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->token == 0) return;
  uint32_t events = 0;
  if (!conn->reads_paused && !conn->busy && !conn->input_done) {
    events |= EPOLLIN;
  }
  if (conn->want_write) events |= EPOLLOUT;
  loop_->Mod(conn->token, events);
}

bool Server::ReadyToClose(const std::shared_ptr<Connection>& conn) {
  if (conn->busy) return false;
  std::lock_guard<std::mutex> lock(conn->mu);
  return conn->pending == 0 && conn->outbox.empty();
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  if (conn->token != 0) {
    loop_->Del(conn->token);
    conn->token = 0;
  }
  std::vector<std::shared_ptr<CancelToken>> orphans;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    for (const auto& [rid, token] : conn->inflight) {
      orphans.push_back(token);
    }
    dropped = conn->outbox_bytes;
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    conn->front_written = 0;
  }
  if (dropped > 0) {
    registry_->RecordNetOutboxBytes(-static_cast<int64_t>(dropped));
  }
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->id);
  }
  registry_->RecordConnectionClosed();
  // A disconnect cancels the queries still in flight on it: nobody can
  // receive their answers, their compute is pure waste, and — since a
  // closed connection is no longer reachable through CancelAllInFlight —
  // leaving them running would also unbound the Stop() drain.
  for (auto& token : orphans) token->Cancel();
}

void Server::RunBlocking(const std::shared_ptr<Connection>& conn,
                         std::function<void()> work) {
  conn->busy = true;
  UpdateInterest(conn);
  {
    std::lock_guard<std::mutex> lock(blocking_mu_);
    blocking_queue_.push_back([this, conn, work = std::move(work)] {
      work();
      loop_->Post([this, conn] {
        conn->busy = false;
        if (conn->dead) return;
        UpdateInterest(conn);
        // Frames that arrived (or were already decoded) before the
        // suspension resume in order.
        ProcessInput(conn);
        if (conn->dead) return;
        if (conn->input_done && ReadyToClose(conn)) CloseConnection(conn);
      });
    });
  }
  blocking_cv_.notify_one();
}

void Server::BlockingWorker() {
  for (;;) {
    std::function<void()> work;
    {
      std::unique_lock<std::mutex> lock(blocking_mu_);
      blocking_cv_.wait(
          lock, [&] { return blocking_stop_ || !blocking_queue_.empty(); });
      if (blocking_queue_.empty()) {
        if (blocking_stop_) return;
        continue;
      }
      work = std::move(blocking_queue_.front());
      blocking_queue_.pop_front();
    }
    work();
  }
}

void Server::OnTick() {
  // Run() invokes this after every epoll_wait return, which under load is
  // far more often than the 50 ms tick — and a sweep over 10k connections
  // must not run per readiness batch. Throttle to the tick period.
  const auto now = std::chrono::steady_clock::now();
  if (now - last_tick_ < std::chrono::milliseconds(kTickMs)) return;
  last_tick_ = now;

  registry_->SetNetLoopCounters(loop_->iterations(), loop_->wakeups());

  if (accept_paused_ && !draining_) {
    // fd-exhaustion backoff over: try accepting again.
    loop_->Mod(listen_token_, EPOLLIN);
    accept_paused_ = false;
  }

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    if (conn->dead) continue;
    if (draining_) {
      if (ReadyToClose(conn)) {
        CloseConnection(conn);
        continue;
      }
      bool stalled = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        stalled = !conn->outbox.empty() &&
                  now - conn->last_write_progress >=
                      std::chrono::milliseconds(kStopWriteGraceMs);
      }
      if (stalled) CloseConnection(conn);  // dead peer: abandon the flush
      continue;
    }
    if (options_.idle_timeout_ms > 0.0 && !conn->busy) {
      // Quiescent means truly drained: no response pending and nothing
      // queued (a partially-written frame keeps the outbox non-empty) —
      // and the idle clock runs from the last activity in EITHER
      // direction, so a connection being served a slow, long-streaming
      // response is never reaped between its frames.
      bool quiescent = false;
      double idle_ms = 0.0;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        quiescent = conn->pending == 0 && conn->outbox.empty();
        idle_ms = std::chrono::duration<double, std::milli>(
                      now - conn->last_activity)
                      .count();
      }
      if (quiescent && idle_ms >= options_.idle_timeout_ms) {
        CloseConnection(conn);
      }
    }
  }

  // Refused-connection courtesy frames that never flushed: expire them.
  std::vector<std::shared_ptr<Refusal>> expired;
  for (const auto& [token, refusal] : refusals_) {
    if (now - refusal->since >=
        std::chrono::milliseconds(kStopWriteGraceMs)) {
      expired.push_back(refusal);
    }
  }
  for (const auto& refusal : expired) {
    loop_->Del(refusal->token);
    ::close(refusal->fd);
    refusals_.erase(refusal->token);
  }
}

// ------------------------------------------------------------- requests

void Server::SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                       const Status& status) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = id;
  EncodeErrorBody(status, &frame.body);
  Enqueue(conn, frame);
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  switch (frame.type) {
    case FrameType::kQueryRequest:
      HandleQuery(conn, frame.request_id, frame.body,
                  std::chrono::steady_clock::now());
      return;
    case FrameType::kStatsRequest: {
      Frame response;
      response.type = FrameType::kStatsResponse;
      response.request_id = frame.request_id;
      response.body = StatsText();
      Enqueue(conn, response);
      return;
    }
    case FrameType::kListRequest:
      HandleList(conn, frame.request_id);
      return;
    case FrameType::kShardInfoRequest:
      HandleShardInfo(conn, frame.request_id);
      return;
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      Enqueue(conn, pong);
      return;
    }
    case FrameType::kCreateRequest:
    case FrameType::kAppendRequest:
    case FrameType::kDropRequest:
      HandleIngest(conn, frame.type, frame.request_id, frame.body);
      return;
    case FrameType::kCancel:
      HandleCancel(conn, frame.request_id);
      return;
    case FrameType::kQueryResponse:
    case FrameType::kStatsResponse:
    case FrameType::kListResponse:
    case FrameType::kError:
    case FrameType::kPong:
    case FrameType::kIngestResponse:
    case FrameType::kMatchResponsePart:
    case FrameType::kShardInfoResponse:
    case FrameType::kFederatedResponse:
      SendError(conn, frame.request_id,
                Status::InvalidArgument("response frame sent to server"));
      return;
  }
  registry_->RecordProtocolError();
  SendError(conn, frame.request_id,
            Status::NotSupported(
                "unknown frame type " +
                std::to_string(static_cast<unsigned>(frame.type))));
}

void Server::HandleList(const std::shared_ptr<Connection>& conn,
                        uint64_t id) {
  std::vector<SeriesInfo> series;
  for (const auto& name : catalog_->ListSeries()) {
    SeriesInfo info;
    info.name = name;
    // Directory metadata, not a session open: listing must stay cheap
    // even when the catalog holds many cold series.
    if (auto length = catalog_->SeriesLength(name); length.ok()) {
      info.length = *length;
    }
    series.push_back(std::move(info));
  }
  Frame response;
  response.type = FrameType::kListResponse;
  response.request_id = id;
  EncodeListResponseBody(series, &response.body);
  Enqueue(conn, response);
}

void Server::HandleShardInfo(const std::shared_ptr<Connection>& conn,
                             uint64_t id) {
  ShardInfo info;
  info.shard_id = options_.shard_id;
  info.num_shards = options_.num_shards;
  info.map_fingerprint = options_.shard_map_fingerprint;
  info.series_count =
      catalog_ != nullptr ? catalog_->ListSeries().size() : 0;
  Frame response;
  response.type = FrameType::kShardInfoResponse;
  response.request_id = id;
  EncodeShardInfoBody(info, &response.body);
  Enqueue(conn, response);
}

void Server::HandleIngest(const std::shared_ptr<Connection>& conn,
                          FrameType type, uint64_t id,
                          std::string_view body) {
  WireIngestRequest request;
  if (Status st = DecodeIngestRequestBody(body, &request); !st.ok()) {
    registry_->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  // Shard-ownership fence: a client writing through a stale shard map
  // must fail loudly here, not silently split a series across shards.
  if (options_.owns_series && !options_.owns_series(request.series)) {
    SendError(conn, id,
              Status::InvalidArgument(
                  "series '" + request.series +
                  "' is not owned by this shard (stale shard map?)"));
    return;
  }
  // The catalog write (journal + chunk puts + index merge) can take long
  // enough to stall every other connection if run on the loop — hand it
  // to the blocking-work thread. This connection's frame processing is
  // suspended meanwhile, so its pipelined requests still execute in
  // order; other connections keep flowing.
  RunBlocking(conn, [this, conn, type, id,
                     request = std::move(request)]() mutable {
    Status st;
    IngestAck ack;
    switch (type) {
      case FrameType::kCreateRequest:
        st = catalog_->CreateSeries(request.series,
                                    TimeSeries(std::move(request.values)));
        break;
      case FrameType::kAppendRequest:
        st = catalog_->AppendSeries(request.series, request.values);
        break;
      default:
        st = catalog_->DropSeries(request.series);
        break;
    }
    if (st.ok() && type != FrameType::kDropRequest) {
      if (auto epoch = catalog_->SeriesEpoch(request.series); epoch.ok()) {
        ack.epoch = *epoch;
      }
      if (auto length = catalog_->SeriesLength(request.series);
          length.ok()) {
        ack.length = *length;
      }
    }
    if (!st.ok()) {
      SendError(conn, id, st);
      return;
    }
    Frame response;
    response.type = FrameType::kIngestResponse;
    response.request_id = id;
    EncodeIngestResponseBody(ack, &response.body);
    Enqueue(conn, response);
  });
}

void Server::HandleCancel(const std::shared_ptr<Connection>& conn,
                          uint64_t id) {
  // Fire-and-forget: the cancelled query answers through its own response
  // path, and a cancel that lost the race to completion is simply a no-op.
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (auto it = conn->inflight.find(id); it != conn->inflight.end()) {
      token = it->second;
    }
  }
  if (token != nullptr) token->Cancel();
}

bool Server::RegisterRequest(const std::shared_ptr<Connection>& conn,
                             uint64_t id,
                             const std::shared_ptr<CancelToken>& token) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight.count(id) > 0) return false;
    conn->pending += 1;
    conn->requests += 1;
    conn->inflight[id] = token;
  }
  total_pending_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void Server::CompleteRequest(const std::shared_ptr<Connection>& conn,
                             uint64_t id, std::vector<std::string> wires) {
  bool need_kick = false;
  {
    // One critical section: the request stays pending until its terminal
    // frame is on the outbox, so neither the idle reaper nor the Stop()
    // drain can observe "no pending work" with the response still in
    // hand. A closed connection drops the frames (nobody can read them)
    // but still retires the booking.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->pending -= 1;
    conn->inflight.erase(id);
    if (!conn->closed) {
      size_t added = 0;
      for (auto& w : wires) {
        added += w.size();
        conn->outbox.push_back(std::move(w));
      }
      conn->outbox_bytes += added;
      registry_->RecordNetOutboxBytes(static_cast<int64_t>(added));
      conn->last_activity = std::chrono::steady_clock::now();
      if (!conn->kick_pending) {
        conn->kick_pending = true;
        need_kick = true;
      }
    }
  }
  if (need_kick) {
    loop_->Post([this, conn] { KickFlush(conn); });
  }
  // LAST, after every other touch of `this`: the moment this hits zero,
  // Stop() may proceed to tear the server down.
  total_pending_.fetch_sub(1, std::memory_order_acq_rel);
}

std::vector<std::string> Server::EncodeResponseRun(uint64_t id,
                                                   QueryResponse response,
                                                   bool wants_trace) const {
  const auto serialize_t0 = std::chrono::steady_clock::now();
  std::vector<std::string> wires;
  // Clamp the chunk so no part frame can exceed the frame cap: a
  // MatchResult encodes at up to 18 bytes (10B varint offset + 8B
  // double), plus prologue headroom. 0 stays 0 (streaming disabled).
  size_t stream_chunk = options_.stream_chunk_matches;
  const size_t cap_matches =
      options_.max_frame_bytes > 64 ? (options_.max_frame_bytes - 64) / 18
                                    : 1;
  if (stream_chunk > cap_matches) stream_chunk = cap_matches;

  if (response.status.ok() && stream_chunk > 0 &&
      response.matches.size() > stream_chunk) {
    // Stream: the match list leaves in bounded parts, the final
    // kQueryResponse carries status/stats/latency and no matches.
    const std::vector<MatchResult> matches = std::move(response.matches);
    response.matches.clear();
    for (size_t begin = 0; begin < matches.size(); begin += stream_chunk) {
      const size_t len = std::min(stream_chunk, matches.size() - begin);
      Frame part;
      part.type = FrameType::kMatchResponsePart;
      part.request_id = id;
      EncodeMatchPartBody(
          std::span<const MatchResult>(matches.data() + begin, len),
          &part.body);
      std::string wire;
      EncodeFrame(part, &wire);
      wires.push_back(std::move(wire));
    }
  }
  Frame frame;
  frame.request_id = id;
  if (response.status.ok()) {
    frame.type = FrameType::kQueryResponse;
    // Split encode: the prefix (parts + status/matches/stats) is timed
    // as the serialize span, which is then part of the trace appended
    // behind it — so the wire trace covers its own cost.
    EncodeQueryResponsePrefix(response, &frame.body);
    if (response.trace != nullptr) {
      response.trace->AddSpan(kSpanSerialize, serialize_t0,
                              std::chrono::steady_clock::now());
    }
    AppendQueryResponseTrace(wants_trace ? response.trace.get() : nullptr,
                             &frame.body);
  } else {
    // Typed error on the wire: the client reconstructs the exact
    // Status (ResourceExhausted, DeadlineExceeded, Cancelled, ...).
    frame.type = FrameType::kError;
    EncodeErrorBody(response.status, &frame.body);
    if (response.trace != nullptr) {
      response.trace->AddSpan(kSpanSerialize, serialize_t0,
                              std::chrono::steady_clock::now());
    }
  }
  std::string wire;
  EncodeFrame(frame, &wire);
  wires.push_back(std::move(wire));
  return wires;
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         uint64_t id, std::string_view body,
                         std::chrono::steady_clock::time_point received) {
  WireQueryRequest wire_request;
  if (Status st = DecodeQueryRequestBody(body, &wire_request); !st.ok()) {
    registry_->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  QueryRequest request = std::move(wire_request.request);
  if (wire_request.by_reference) {
    auto session = catalog_->Acquire(request.series);
    if (!session.ok()) {
      SendError(conn, id, session.status());
      return;
    }
    const size_t series_len = (*session)->series().size();
    const uint64_t offset = wire_request.ref_offset;
    const uint64_t length = wire_request.ref_length;
    if (length == 0 || offset > series_len ||
        length > series_len - offset) {
      SendError(conn, id,
                Status::InvalidArgument(
                    "query reference [" + std::to_string(offset) + ", +" +
                    std::to_string(length) + ") is outside '" +
                    request.series + "'"));
      return;
    }
    const auto span = (*session)->series().Subsequence(
        static_cast<size_t>(offset), static_cast<size_t>(length));
    request.query.assign(span.begin(), span.end());
  }

  // Deadline re-anchoring: the wire carries the REMAINING budget as of
  // the sender's send instant, so time spent on the wire and waiting in
  // this socket's buffer must be charged against it here — not silently
  // granted again (the double-count this hop used to have). A budget
  // that is already spent still submits: QueryService answers
  // DeadlineExceeded and records the counter, keeping the accounting in
  // one place.
  request.timeout_ms = RemainingBudgetMs(request.timeout_ms, received);

  // The client's trace wish is remembered separately: the slow-query log
  // needs traces for every query while enabled, but only clients that
  // asked for one get it echoed back on the wire.
  const bool wants_trace = request.collect_trace;
  if (options_.slow_query_ms > 0.0) request.collect_trace = true;
  const std::string series_name = request.series;

  // The token is registered before submission, so a kCancel can never
  // race ahead of its target; the completion callback retires it. A
  // request id already in flight is rejected: accepting it would clobber
  // the first query's token (leaving one of the two uncancellable, which
  // would also break Stop()'s bounded-drain guarantee).
  auto token = std::make_shared<CancelToken>();
  request.cancel = token;
  if (!RegisterRequest(conn, id, token)) {
    registry_->RecordProtocolError();
    SendError(conn, id,
              Status::InvalidArgument("request id " + std::to_string(id) +
                                      " is already in flight"));
    return;
  }
  // Clamp the chunk so no part frame can exceed the frame cap: a
  // MatchResult encodes at up to 18 bytes (10B varint offset + 8B
  // double), plus prologue headroom. 0 stays 0 (streaming disabled).
  size_t stream_chunk = options_.stream_chunk_matches;
  const size_t cap_matches =
      options_.max_frame_bytes > 64 ? (options_.max_frame_bytes - 64) / 18
                                    : 1;
  if (stream_chunk > cap_matches) stream_chunk = cap_matches;

  // Incremental streaming (ε-threshold queries with streaming enabled):
  // verified slices arrive through on_partial while later slices are
  // still running; every full chunk leaves the server immediately and
  // only the tail rides the completion path, so transfer overlaps
  // verification. The wire shape is byte-identical to the
  // whole-result-at-completion path: parts of exactly `stream_chunk`
  // matches, a final part of at most one chunk, and no parts at all when
  // the result fits in one chunk. Accesses to the state need no lock —
  // the service serializes on_partial calls and runs the completion
  // callback strictly after the last one.
  struct StreamState {
    std::vector<MatchResult> buffer;
    bool parts_sent = false;
  };
  std::shared_ptr<StreamState> stream;
  if (stream_chunk > 0 && request.top_k == 0) {
    stream = std::make_shared<StreamState>();
    request.on_partial = [this, conn, id, stream_chunk,
                          stream](std::span<const MatchResult> part) {
      auto& buf = stream->buffer;
      buf.insert(buf.end(), part.begin(), part.end());
      size_t begin = 0;
      // Keep at least one match buffered: the last part must be the one
      // that may run short, exactly as the completion-time chunker does.
      while (buf.size() - begin > stream_chunk) {
        Frame pf;
        pf.type = FrameType::kMatchResponsePart;
        pf.request_id = id;
        EncodeMatchPartBody(
            std::span<const MatchResult>(buf.data() + begin, stream_chunk),
            &pf.body);
        std::string wire;
        EncodeFrame(pf, &wire);
        EnqueueRaw(conn, std::move(wire));
        stream->parts_sent = true;
        begin += stream_chunk;
      }
      if (begin > 0) buf.erase(buf.begin(), buf.begin() + begin);
    };
  }
  service_->SubmitWithCallback(
      std::move(request),
      [this, conn, id, stream_chunk, wants_trace, series_name,
       stream](QueryResponse response) {
        // Encoded frames for this response, pushed onto the outbox as one
        // contiguous run (other requests' frames may interleave between
        // runs — the client reassembles per request id).
        std::vector<std::string> wires;
        if (stream != nullptr && response.status.ok()) {
          if (!stream->parts_sent) {
            // Nothing left early, so at most one chunk accumulated:
            // deliver it on the final frame like the classic path.
            if (response.matches.empty()) {
              response.matches = std::move(stream->buffer);
            }
          } else {
            // Parts are already on the wire; flush the buffered tail
            // (≤ one chunk) as the closing part(s).
            for (size_t begin = 0; begin < stream->buffer.size();
                 begin += stream_chunk) {
              const size_t len =
                  std::min(stream_chunk, stream->buffer.size() - begin);
              Frame part;
              part.type = FrameType::kMatchResponsePart;
              part.request_id = id;
              EncodeMatchPartBody(
                  std::span<const MatchResult>(stream->buffer.data() + begin,
                                               len),
                  &part.body);
              std::string wire;
              EncodeFrame(part, &wire);
              wires.push_back(std::move(wire));
            }
          }
        }
        // The response's trace/latency outlive the encode below (the run
        // consumes the response) for the slow-query log, which must fire
        // before the request is retired: Stop() may destroy the server
        // the moment every pending count hits zero, so nothing may touch
        // `this` after CompleteRequest.
        const auto trace = response.trace;
        const double latency_ms = response.latency_ms;
        const bool response_ok = response.status.ok();
        const std::string status_text =
            response_ok ? "ok" : response.status.ToString();
        for (auto& w : EncodeResponseRun(id, std::move(response),
                                         wants_trace)) {
          wires.push_back(std::move(w));
        }
        if (options_.slow_query_ms > 0.0 && trace != nullptr &&
            latency_ms >= options_.slow_query_ms) {
          const std::string line = TraceToJsonLine(series_name, status_text,
                                                   latency_ms, *trace);
          if (options_.slow_query_log) {
            options_.slow_query_log(line);
          } else {
            std::fprintf(stderr, "%s\n", line.c_str());
          }
        }
        CompleteRequest(conn, id, std::move(wires));
      });
}

}  // namespace net
}  // namespace kvmatch
