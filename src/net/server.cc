#include "net/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/event_log.h"

namespace kvmatch {
namespace net {

namespace {

constexpr int kPollIntervalMs = 100;   // stop_-flag latency for idle loops
constexpr int kStopWriteGraceMs = 5000;  // give up on a dead peer at Stop()

/// Bytes needed to tell a plain-HTTP scrape from a binary frame. An HTTP
/// verb read as a little-endian frame length would be absurd (e.g. "GET "
/// ≈ 542 MB), far past kMaxPayloadBytes — the two protocols cannot
/// collide within the cap.
constexpr size_t kHttpSniffBytes = 4;
/// A scrape request's head must fit this; anything longer is dropped.
constexpr size_t kMaxHttpHeadBytes = 16 * 1024;

bool LooksLikeHttp(std::string_view prelude) {
  return prelude.substr(0, 4) == "GET " || prelude.substr(0, 4) == "HEAD" ||
         prelude.substr(0, 4) == "POST" || prelude.substr(0, 4) == "PUT " ||
         prelude.substr(0, 4) == "DELE" || prelude.substr(0, 4) == "OPTI";
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Writes all of `data`, polling for writability so a stalled peer can be
/// abandoned once `stopping` has been requested for a while.
Status WriteAll(int fd, std::string_view data,
                const std::atomic<bool>& stopping) {
  int stalled_ms = 0;
  while (!data.empty()) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) {
      stalled_ms += kPollIntervalMs;
      if (stopping.load(std::memory_order_relaxed) &&
          stalled_ms >= kStopWriteGraceMs) {
        return Status::IOError("peer not reading during shutdown");
      }
      continue;
    }
    stalled_ms = 0;
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

Server::Server(Catalog* catalog, QueryService* service, Options options)
    : catalog_(catalog),
      service_(service),
      registry_(service->stats_registry()),
      options_(std::move(options)) {}

Server::Server(StatsRegistry* registry, Options options)
    : catalog_(nullptr),
      service_(nullptr),
      registry_(registry),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(options_.port);
  if (::getaddrinfo(options_.bind_address.c_str(), port_str.c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    return Status::InvalidArgument("cannot resolve bind address " +
                                   options_.bind_address);
  }

  listen_fd_ = ::socket(resolved->ai_family, resolved->ai_socktype, 0);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(resolved);
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, resolved->ai_addr, resolved->ai_addrlen) < 0) {
    ::freeaddrinfo(resolved);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("bind " + options_.bind_address + ":" + port_str);
  }
  ::freeaddrinfo(resolved);
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("listen");
  }

  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  started_ = true;
  stop_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  // Bounded drain: give in-flight queries drain_timeout_ms to finish on
  // their own, then cancel the stragglers through their tokens — they
  // abort at the next probe/slice checkpoint and their Cancelled
  // responses flush like any other, so Reap below never waits on a
  // runaway scan.
  if (options_.drain_timeout_ms > 0.0) {
    const auto drain_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.drain_timeout_ms));
    while (PendingQueries() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Sweep repeatedly, not once: a reader mid-iteration when stop_ was
    // set can still register and submit a query for up to one poll
    // interval, and a single sweep taken before that registration would
    // let it run uncancelled — putting Reap right back into the
    // unbounded wait this drain exists to prevent. Re-sweeping until the
    // pipeline is empty is cheap (cancelling a token twice is a no-op)
    // and terminates: readers stop submitting within kPollIntervalMs,
    // and every cancelled query answers within one verify slice.
    while (PendingQueries() > 0) {
      CancelAllInFlight();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  Reap(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  // Flight recorder last: the ring now includes everything the drain
  // above produced (final commits, evictions, purges).
  if (options_.dump_events_on_stop && options_.event_log != nullptr) {
    for (const auto& line : options_.event_log->RingLines()) {
      if (options_.event_dump) {
        options_.event_dump(line);
      } else {
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    }
  }
}

size_t Server::PendingQueries() const {
  size_t pending = 0;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& [id, conn] : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    pending += conn->pending;
  }
  return pending;
}

void Server::CancelAllInFlight() {
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, conn] : conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      for (const auto& [rid, token] : conn->inflight) {
        tokens.push_back(token);
      }
    }
  }
  for (auto& token : tokens) token->Cancel();
}

size_t Server::ActiveConnections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

std::string Server::StatsText() const {
  // Via QueryService::Stats() (not the registry directly) so the pool's
  // queue-depth / busy-worker gauges are populated.
  std::string out = StatsToText(service_->Stats());
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& [id, conn] : conns_) {
    uint64_t requests = 0;
    {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      requests = conn->requests;
    }
    const double age =
        std::chrono::duration<double>(now - conn->opened).count();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "kvmatch_connection_requests_total{conn=\"%llu\"} %llu\n"
                  "kvmatch_connection_qps{conn=\"%llu\"} %.6g\n"
                  "kvmatch_connection_age_seconds{conn=\"%llu\"} %.6g\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(id),
                  age > 0.0 ? static_cast<double>(requests) / age : 0.0,
                  static_cast<unsigned long long>(id), age);
    out.append(buf);
  }
  return out;
}

void Server::AcceptLoop() {
  StatsRegistry* registry = registry_;
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    // Reap on every tick, not just after an accept: otherwise dead
    // connections would hold their fds and distort the connection
    // gauges until the next client happens to show up.
    Reap(/*all=*/false);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool over_limit = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      over_limit = conns_.size() >= options_.max_connections;
    }
    if (over_limit) {
      registry->RecordConnectionRejected();
      Frame refusal;
      refusal.type = FrameType::kError;
      std::string body;
      EncodeErrorBody(
          Status::ResourceExhausted("connection limit reached"), &body);
      refusal.body = std::move(body);
      std::string wire;
      EncodeFrame(refusal, &wire);
      (void)WriteAll(fd, wire, stop_);  // best-effort courtesy
      ::close(fd);
      continue;
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->opened = std::chrono::steady_clock::now();
    conn->last_enqueue = conn->opened;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    registry->RecordConnectionOpened();
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  }
}

void Server::Reap(bool all) {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      bool finished = false;
      {
        std::lock_guard<std::mutex> conn_lock(it->second->mu);
        finished = it->second->finished;
      }
      if (all || finished) {
        done.push_back(it->second);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
    registry_->RecordConnectionClosed();
  }
}

void Server::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  char buf[64 * 1024];
  auto last_activity = std::chrono::steady_clock::now();
  bool open = true;
  // Protocol sniff: the first kHttpSniffBytes decide whether this
  // connection speaks binary frames or plain HTTP (a Prometheus scrape,
  // a curl /healthz). Until decided, bytes accumulate in http_buf.
  bool sniffed = false;
  bool http_mode = false;
  std::string http_buf;

  while (open && !stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {conn->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0.0) {
        // Quiescent means truly drained: no response pending, nothing
        // queued, and the writer not mid-WriteAll on a frame it already
        // popped (the outbox being empty does NOT imply the wire is) —
        // and the idle clock runs from the last activity in EITHER
        // direction, so a connection being served a slow, long-streaming
        // response is never reaped between its frames.
        bool quiescent = false;
        auto last_outbound = last_activity;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          quiescent = conn->pending == 0 && conn->outbox.empty() &&
                      !conn->writing;
          last_outbound = conn->last_enqueue;
        }
        const auto last = std::max(last_activity, last_outbound);
        const double idle_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - last)
                                   .count();
        if (quiescent && idle_ms >= options_.idle_timeout_ms) break;
      }
      continue;
    }

    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed its write side
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    last_activity = std::chrono::steady_clock::now();
    if (!sniffed) {
      http_buf.append(buf, static_cast<size_t>(n));
      if (http_buf.size() < kHttpSniffBytes) continue;
      sniffed = true;
      http_mode = LooksLikeHttp(http_buf);
      if (!http_mode) {
        decoder.Feed(http_buf);
        http_buf.clear();
        http_buf.shrink_to_fit();
      }
    } else if (http_mode) {
      http_buf.append(buf, static_cast<size_t>(n));
    } else {
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }

    if (http_mode) {
      if (http_buf.size() > kMaxHttpHeadBytes) break;  // not a scrape
      const size_t head_end = http_buf.find("\r\n\r\n");
      if (head_end == std::string::npos) continue;  // head still arriving
      HandleHttp(conn, std::string_view(http_buf).substr(0, head_end));
      break;  // Connection: close — one request per connection
    }

    for (;;) {
      Frame frame;
      Status error;
      const FrameDecoder::Event event = decoder.Next(&frame, &error);
      if (event == FrameDecoder::Event::kNeedMore) break;
      if (event == FrameDecoder::Event::kFrame) {
        HandleFrame(conn, std::move(frame));
        continue;
      }
      // kBadFrame / kFatal: answer with a typed error; the request id is
      // unrecoverable from a corrupt payload, so 0 means "stream-level".
      registry_->RecordProtocolError();
      SendError(conn, 0, error);
      if (event == FrameDecoder::Event::kFatal) {
        open = false;  // framing offset lost: this connection is done
        break;
      }
    }
  }

  std::lock_guard<std::mutex> lock(conn->mu);
  conn->reader_done = true;
  conn->cv.notify_all();
}

void Server::WriterLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string next;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [&] {
        return conn->aborted || !conn->outbox.empty() ||
               (conn->reader_done && conn->pending == 0);
      });
      if (conn->aborted) break;
      if (conn->outbox.empty()) {
        if (conn->reader_done && conn->pending == 0) break;  // drained
        continue;
      }
      next = std::move(conn->outbox.front());
      conn->outbox.pop_front();
      conn->writing = true;  // mid-WriteAll: not quiescent
    }
    const Status write_status = WriteAll(conn->fd, next, stop_);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->writing = false;
      // The idle clock restarts when the peer finishes DRAINING the
      // response, not when it was enqueued — a slow consumer must not
      // surface as "idle for the whole transfer" the instant the last
      // byte leaves.
      conn->last_enqueue = std::chrono::steady_clock::now();
      if (!write_status.ok()) {
        conn->aborted = true;
        break;
      }
    }
  }
  // Wake the reader out of poll() so it observes the closed stream, then
  // hand the connection to the reaper. The fd stays open until both
  // threads are joined — shutdown() only disables I/O on it.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->finished = true;
  }
}

void Server::Enqueue(const std::shared_ptr<Connection>& conn,
                     const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  EnqueueRaw(conn, std::move(wire));
}

void Server::EnqueueRaw(const std::shared_ptr<Connection>& conn,
                        std::string wire) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (!conn->aborted) {
    conn->outbox.push_back(std::move(wire));
    conn->last_enqueue = std::chrono::steady_clock::now();
  }
  conn->cv.notify_all();
}

void Server::HandleHttp(const std::shared_ptr<Connection>& conn,
                        std::string_view head) {
  // Request line only; headers are irrelevant for a scrape.
  std::string_view line = head.substr(0, head.find("\r\n"));
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  std::string_view method, target;
  if (sp1 != std::string_view::npos && sp2 != std::string_view::npos &&
      sp2 > sp1) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);  // scrape params are ignored
  }

  int code = 200;
  const char* reason = "OK";
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET" && method != "HEAD") {
    code = 405;
    reason = "Method Not Allowed";
    body = "method not allowed\n";
  } else if (target == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = StatsText();
  } else if (target == "/healthz") {
    body = "ok\n";
  } else {
    code = 404;
    reason = "Not Found";
    body = "not found\n";
  }

  registry_->RecordHttpRequest();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->requests += 1;
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                code, reason, content_type, body.size());
  std::string wire(header);
  if (method != "HEAD") wire += body;
  EnqueueRaw(conn, std::move(wire));
}

void Server::SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                       const Status& status) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = id;
  EncodeErrorBody(status, &frame.body);
  Enqueue(conn, frame);
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  switch (frame.type) {
    case FrameType::kQueryRequest:
      HandleQuery(conn, frame.request_id, frame.body,
                  std::chrono::steady_clock::now());
      return;
    case FrameType::kStatsRequest: {
      Frame response;
      response.type = FrameType::kStatsResponse;
      response.request_id = frame.request_id;
      response.body = StatsText();
      Enqueue(conn, response);
      return;
    }
    case FrameType::kListRequest:
      HandleList(conn, frame.request_id);
      return;
    case FrameType::kShardInfoRequest:
      HandleShardInfo(conn, frame.request_id);
      return;
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      Enqueue(conn, pong);
      return;
    }
    case FrameType::kCreateRequest:
    case FrameType::kAppendRequest:
    case FrameType::kDropRequest:
      HandleIngest(conn, frame.type, frame.request_id, frame.body);
      return;
    case FrameType::kCancel:
      HandleCancel(conn, frame.request_id);
      return;
    case FrameType::kQueryResponse:
    case FrameType::kStatsResponse:
    case FrameType::kListResponse:
    case FrameType::kError:
    case FrameType::kPong:
    case FrameType::kIngestResponse:
    case FrameType::kMatchResponsePart:
    case FrameType::kShardInfoResponse:
    case FrameType::kFederatedResponse:
      SendError(conn, frame.request_id,
                Status::InvalidArgument("response frame sent to server"));
      return;
  }
  registry_->RecordProtocolError();
  SendError(conn, frame.request_id,
            Status::NotSupported(
                "unknown frame type " +
                std::to_string(static_cast<unsigned>(frame.type))));
}

void Server::HandleList(const std::shared_ptr<Connection>& conn,
                        uint64_t id) {
  std::vector<SeriesInfo> series;
  for (const auto& name : catalog_->ListSeries()) {
    SeriesInfo info;
    info.name = name;
    // Directory metadata, not a session open: listing must stay cheap
    // even when the catalog holds many cold series.
    if (auto length = catalog_->SeriesLength(name); length.ok()) {
      info.length = *length;
    }
    series.push_back(std::move(info));
  }
  Frame response;
  response.type = FrameType::kListResponse;
  response.request_id = id;
  EncodeListResponseBody(series, &response.body);
  Enqueue(conn, response);
}

void Server::HandleShardInfo(const std::shared_ptr<Connection>& conn,
                             uint64_t id) {
  ShardInfo info;
  info.shard_id = options_.shard_id;
  info.num_shards = options_.num_shards;
  info.map_fingerprint = options_.shard_map_fingerprint;
  info.series_count =
      catalog_ != nullptr ? catalog_->ListSeries().size() : 0;
  Frame response;
  response.type = FrameType::kShardInfoResponse;
  response.request_id = id;
  EncodeShardInfoBody(info, &response.body);
  Enqueue(conn, response);
}

void Server::HandleIngest(const std::shared_ptr<Connection>& conn,
                          FrameType type, uint64_t id,
                          std::string_view body) {
  WireIngestRequest request;
  if (Status st = DecodeIngestRequestBody(body, &request); !st.ok()) {
    registry_->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  // Shard-ownership fence: a client writing through a stale shard map
  // must fail loudly here, not silently split a series across shards.
  if (options_.owns_series && !options_.owns_series(request.series)) {
    SendError(conn, id,
              Status::InvalidArgument(
                  "series '" + request.series +
                  "' is not owned by this shard (stale shard map?)"));
    return;
  }
  // Ingest runs inline on this connection's reader thread: catalog writes
  // are serialized anyway, and pipelined queries on *other* connections
  // keep flowing. A client that wants queries to overlap its own ingest
  // uses a second connection.
  Status st;
  IngestAck ack;
  switch (type) {
    case FrameType::kCreateRequest:
      st = catalog_->CreateSeries(request.series,
                                  TimeSeries(std::move(request.values)));
      break;
    case FrameType::kAppendRequest:
      st = catalog_->AppendSeries(request.series, request.values);
      break;
    default:
      st = catalog_->DropSeries(request.series);
      break;
  }
  if (st.ok() && type != FrameType::kDropRequest) {
    if (auto epoch = catalog_->SeriesEpoch(request.series); epoch.ok()) {
      ack.epoch = *epoch;
    }
    if (auto length = catalog_->SeriesLength(request.series); length.ok()) {
      ack.length = *length;
    }
  }
  if (!st.ok()) {
    SendError(conn, id, st);
    return;
  }
  Frame response;
  response.type = FrameType::kIngestResponse;
  response.request_id = id;
  EncodeIngestResponseBody(ack, &response.body);
  Enqueue(conn, response);
}

void Server::HandleCancel(const std::shared_ptr<Connection>& conn,
                          uint64_t id) {
  // Fire-and-forget: the cancelled query answers through its own response
  // path, and a cancel that lost the race to completion is simply a no-op.
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (auto it = conn->inflight.find(id); it != conn->inflight.end()) {
      token = it->second;
    }
  }
  if (token != nullptr) token->Cancel();
}

bool Server::RegisterRequest(const std::shared_ptr<Connection>& conn,
                             uint64_t id,
                             const std::shared_ptr<CancelToken>& token) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->inflight.count(id) > 0) return false;
  conn->pending += 1;
  conn->requests += 1;
  conn->inflight[id] = token;
  return true;
}

void Server::CompleteRequest(const std::shared_ptr<Connection>& conn,
                             uint64_t id, std::vector<std::string> wires) {
  // One critical section: the request stays pending until its terminal
  // frame is on the outbox, so neither the idle reaper nor the Stop()
  // drain can observe "no pending work" with the response still in hand.
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->pending -= 1;
  conn->inflight.erase(id);
  if (!conn->aborted) {
    for (auto& w : wires) conn->outbox.push_back(std::move(w));
    conn->last_enqueue = std::chrono::steady_clock::now();
  }
  conn->cv.notify_all();
}

std::vector<std::string> Server::EncodeResponseRun(uint64_t id,
                                                   QueryResponse response,
                                                   bool wants_trace) const {
  const auto serialize_t0 = std::chrono::steady_clock::now();
  std::vector<std::string> wires;
  // Clamp the chunk so no part frame can exceed the frame cap: a
  // MatchResult encodes at up to 18 bytes (10B varint offset + 8B
  // double), plus prologue headroom. 0 stays 0 (streaming disabled).
  size_t stream_chunk = options_.stream_chunk_matches;
  const size_t cap_matches =
      options_.max_frame_bytes > 64 ? (options_.max_frame_bytes - 64) / 18
                                    : 1;
  if (stream_chunk > cap_matches) stream_chunk = cap_matches;

  if (response.status.ok() && stream_chunk > 0 &&
      response.matches.size() > stream_chunk) {
    // Stream: the match list leaves in bounded parts, the final
    // kQueryResponse carries status/stats/latency and no matches.
    const std::vector<MatchResult> matches = std::move(response.matches);
    response.matches.clear();
    for (size_t begin = 0; begin < matches.size(); begin += stream_chunk) {
      const size_t len = std::min(stream_chunk, matches.size() - begin);
      Frame part;
      part.type = FrameType::kMatchResponsePart;
      part.request_id = id;
      EncodeMatchPartBody(
          std::span<const MatchResult>(matches.data() + begin, len),
          &part.body);
      std::string wire;
      EncodeFrame(part, &wire);
      wires.push_back(std::move(wire));
    }
  }
  Frame frame;
  frame.request_id = id;
  if (response.status.ok()) {
    frame.type = FrameType::kQueryResponse;
    // Split encode: the prefix (parts + status/matches/stats) is timed
    // as the serialize span, which is then part of the trace appended
    // behind it — so the wire trace covers its own cost.
    EncodeQueryResponsePrefix(response, &frame.body);
    if (response.trace != nullptr) {
      response.trace->AddSpan(kSpanSerialize, serialize_t0,
                              std::chrono::steady_clock::now());
    }
    AppendQueryResponseTrace(wants_trace ? response.trace.get() : nullptr,
                             &frame.body);
  } else {
    // Typed error on the wire: the client reconstructs the exact
    // Status (ResourceExhausted, DeadlineExceeded, Cancelled, ...).
    frame.type = FrameType::kError;
    EncodeErrorBody(response.status, &frame.body);
    if (response.trace != nullptr) {
      response.trace->AddSpan(kSpanSerialize, serialize_t0,
                              std::chrono::steady_clock::now());
    }
  }
  std::string wire;
  EncodeFrame(frame, &wire);
  wires.push_back(std::move(wire));
  return wires;
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         uint64_t id, std::string_view body,
                         std::chrono::steady_clock::time_point received) {
  WireQueryRequest wire_request;
  if (Status st = DecodeQueryRequestBody(body, &wire_request); !st.ok()) {
    registry_->RecordProtocolError();
    SendError(conn, id, st);
    return;
  }
  QueryRequest request = std::move(wire_request.request);
  if (wire_request.by_reference) {
    auto session = catalog_->Acquire(request.series);
    if (!session.ok()) {
      SendError(conn, id, session.status());
      return;
    }
    const size_t series_len = (*session)->series().size();
    const uint64_t offset = wire_request.ref_offset;
    const uint64_t length = wire_request.ref_length;
    if (length == 0 || offset > series_len ||
        length > series_len - offset) {
      SendError(conn, id,
                Status::InvalidArgument(
                    "query reference [" + std::to_string(offset) + ", +" +
                    std::to_string(length) + ") is outside '" +
                    request.series + "'"));
      return;
    }
    const auto span = (*session)->series().Subsequence(
        static_cast<size_t>(offset), static_cast<size_t>(length));
    request.query.assign(span.begin(), span.end());
  }

  // Deadline re-anchoring: the wire carries the REMAINING budget as of
  // the sender's send instant, so time spent on the wire and waiting in
  // this reader's socket buffer must be charged against it here — not
  // silently granted again (the double-count this hop used to have). A
  // budget that is already spent still submits: QueryService answers
  // DeadlineExceeded and records the counter, keeping the accounting in
  // one place.
  request.timeout_ms = RemainingBudgetMs(request.timeout_ms, received);

  // The client's trace wish is remembered separately: the slow-query log
  // needs traces for every query while enabled, but only clients that
  // asked for one get it echoed back on the wire.
  const bool wants_trace = request.collect_trace;
  if (options_.slow_query_ms > 0.0) request.collect_trace = true;
  const std::string series_name = request.series;

  // The token is registered before submission, so a kCancel can never
  // race ahead of its target; the completion callback retires it. A
  // request id already in flight is rejected: accepting it would clobber
  // the first query's token (leaving one of the two uncancellable, which
  // would also break Stop()'s bounded-drain guarantee).
  auto token = std::make_shared<CancelToken>();
  request.cancel = token;
  if (!RegisterRequest(conn, id, token)) {
    registry_->RecordProtocolError();
    SendError(conn, id,
              Status::InvalidArgument("request id " + std::to_string(id) +
                                      " is already in flight"));
    return;
  }
  // Clamp the chunk so no part frame can exceed the frame cap: a
  // MatchResult encodes at up to 18 bytes (10B varint offset + 8B
  // double), plus prologue headroom. 0 stays 0 (streaming disabled).
  size_t stream_chunk = options_.stream_chunk_matches;
  const size_t cap_matches =
      options_.max_frame_bytes > 64 ? (options_.max_frame_bytes - 64) / 18
                                    : 1;
  if (stream_chunk > cap_matches) stream_chunk = cap_matches;

  // Incremental streaming (ε-threshold queries with streaming enabled):
  // verified slices arrive through on_partial while later slices are
  // still running; every full chunk leaves the server immediately and
  // only the tail rides the completion path, so transfer overlaps
  // verification. The wire shape is byte-identical to the
  // whole-result-at-completion path: parts of exactly `stream_chunk`
  // matches, a final part of at most one chunk, and no parts at all when
  // the result fits in one chunk. Accesses to the state need no lock —
  // the service serializes on_partial calls and runs the completion
  // callback strictly after the last one.
  struct StreamState {
    std::vector<MatchResult> buffer;
    bool parts_sent = false;
  };
  std::shared_ptr<StreamState> stream;
  if (stream_chunk > 0 && request.top_k == 0) {
    stream = std::make_shared<StreamState>();
    request.on_partial = [this, conn, id, stream_chunk,
                          stream](std::span<const MatchResult> part) {
      auto& buf = stream->buffer;
      buf.insert(buf.end(), part.begin(), part.end());
      size_t begin = 0;
      // Keep at least one match buffered: the last part must be the one
      // that may run short, exactly as the completion-time chunker does.
      while (buf.size() - begin > stream_chunk) {
        Frame pf;
        pf.type = FrameType::kMatchResponsePart;
        pf.request_id = id;
        EncodeMatchPartBody(
            std::span<const MatchResult>(buf.data() + begin, stream_chunk),
            &pf.body);
        std::string wire;
        EncodeFrame(pf, &wire);
        EnqueueRaw(conn, std::move(wire));
        stream->parts_sent = true;
        begin += stream_chunk;
      }
      if (begin > 0) buf.erase(buf.begin(), buf.begin() + begin);
    };
  }
  service_->SubmitWithCallback(
      std::move(request),
      [this, conn, id, stream_chunk, wants_trace, series_name,
       stream](QueryResponse response) {
        // Encoded frames for this response, pushed onto the outbox as one
        // contiguous run (other requests' frames may interleave between
        // runs — the client reassembles per request id).
        std::vector<std::string> wires;
        if (stream != nullptr && response.status.ok()) {
          if (!stream->parts_sent) {
            // Nothing left early, so at most one chunk accumulated:
            // deliver it on the final frame like the classic path.
            if (response.matches.empty()) {
              response.matches = std::move(stream->buffer);
            }
          } else {
            // Parts are already on the wire; flush the buffered tail
            // (≤ one chunk) as the closing part(s).
            for (size_t begin = 0; begin < stream->buffer.size();
                 begin += stream_chunk) {
              const size_t len =
                  std::min(stream_chunk, stream->buffer.size() - begin);
              Frame part;
              part.type = FrameType::kMatchResponsePart;
              part.request_id = id;
              EncodeMatchPartBody(
                  std::span<const MatchResult>(stream->buffer.data() + begin,
                                               len),
                  &part.body);
              std::string wire;
              EncodeFrame(part, &wire);
              wires.push_back(std::move(wire));
            }
          }
        }
        // The response's trace/latency outlive the encode below (the run
        // consumes the response) for the slow-query log, which must fire
        // before the request is retired: Stop() may destroy the server
        // the moment every pending count hits zero, so nothing may touch
        // `this` after CompleteRequest.
        const auto trace = response.trace;
        const double latency_ms = response.latency_ms;
        const bool response_ok = response.status.ok();
        const std::string status_text =
            response_ok ? "ok" : response.status.ToString();
        for (auto& w : EncodeResponseRun(id, std::move(response),
                                         wants_trace)) {
          wires.push_back(std::move(w));
        }
        if (options_.slow_query_ms > 0.0 && trace != nullptr &&
            latency_ms >= options_.slow_query_ms) {
          const std::string line = TraceToJsonLine(series_name, status_text,
                                                   latency_ms, *trace);
          if (options_.slow_query_log) {
            options_.slow_query_log(line);
          } else {
            std::fprintf(stderr, "%s\n", line.c_str());
          }
        }
        CompleteRequest(conn, id, std::move(wires));
      });
}

}  // namespace net
}  // namespace kvmatch
