#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace kvmatch {
namespace net {

namespace {
/// Events harvested per epoll_wait call. Level-triggered registrations
/// re-fire, so a batch smaller than the ready set only delays, never
/// loses, readiness.
constexpr int kMaxEvents = 128;
/// handlers_ token reserved for the eventfd wakeup.
constexpr uint64_t kWakeToken = 0;
}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wakeup): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

uint64_t EventLoop::Add(int fd, uint32_t events, Callback callback) {
  const uint64_t token = next_token_++;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) return 0;
  handlers_[token] = Handler{fd, events, std::move(callback)};
  return token;
}

void EventLoop::Mod(uint64_t token, uint32_t events) {
  auto it = handlers_.find(token);
  if (it == handlers_.end() || it->second.events == events) return;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, it->second.fd, &ev) == 0) {
    it->second.events = events;
  }
}

void EventLoop::Del(uint64_t token) {
  auto it = handlers_.find(token);
  if (it == handlers_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  handlers_.erase(it);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    const uint64_t one = 1;
    // A full eventfd counter (impossible here) would mean a wakeup is
    // already pending anyway.
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void EventLoop::DrainWakeup() {
  uint64_t drained = 0;
  (void)!::read(wake_fd_, &drained, sizeof(drained));
  wake_pending_.store(false, std::memory_order_release);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::Run(int tick_ms, const std::function<void()>& on_tick) {
  loop_thread_ = std::this_thread::get_id();
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, tick_ms);
    iterations_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        DrainWakeup();
        continue;
      }
      // A peer callback in this same batch may have unregistered this
      // token (closed the connection): the event is stale, drop it.
      auto it = handlers_.find(token);
      if (it == handlers_.end()) continue;
      // Invoke a copy: the callback may Del() its own registration
      // (closing the connection), which would otherwise destroy the
      // std::function out from under its executing frame.
      const Callback cb = it->second.callback;
      cb(events[i].events);
    }
    // Posted closures AFTER readiness callbacks: a completion posted by a
    // worker mid-batch sees the connection state those callbacks left.
    for (;;) {
      std::vector<std::function<void()>> batch;
      {
        std::lock_guard<std::mutex> lock(posted_mu_);
        batch.swap(posted_);
      }
      if (batch.empty()) break;
      for (auto& fn : batch) fn();
    }
    if (on_tick) on_tick();
  }
}

void EventLoop::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Post([] {});  // wake the loop so it observes the flag promptly
}

}  // namespace net
}  // namespace kvmatch
