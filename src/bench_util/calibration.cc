#include "bench_util/calibration.h"

#include <algorithm>
#include <cmath>

namespace kvmatch {

double CalibrateEpsilon(const TimeSeries& series, const PrefixStats& prefix,
                        std::span<const double> q, QueryParams params,
                        double target_selectivity, int max_iters,
                        double hi_hint) {
  const size_t n = series.size();
  const size_t m = q.size();
  if (n < m) return 0.0;
  const double offsets = static_cast<double>(n - m + 1);
  const double target =
      std::max(1.0, std::round(target_selectivity * offsets));
  UcrSuite ucr(series, prefix);

  auto count_at = [&](double eps) -> double {
    params.epsilon = eps;
    return static_cast<double>(ucr.Match(q, params).size());
  };

  // Bracket: grow hi until the count reaches the target (or saturates),
  // unless the caller already knows an upper bracket.
  double lo = 0.0;
  double hi = hi_hint > 0.0 ? hi_hint : 1.0;
  if (hi_hint <= 0.0) {
    for (int i = 0; i < 40 && count_at(hi) < target; ++i) hi *= 2.0;
  }
  // Shrink with binary search toward the smallest ε reaching the target.
  for (int i = 0; i < max_iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (count_at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double CalibrateEpsilonViaEd(const TimeSeries& series,
                             const PrefixStats& prefix,
                             std::span<const double> q, QueryParams params,
                             double target_selectivity, int max_iters) {
  if (!IsDtw(params.type)) {
    return CalibrateEpsilon(series, prefix, q, params, target_selectivity,
                            max_iters);
  }
  QueryParams ed = params;
  ed.type = params.type == QueryType::kRsmDtw ? QueryType::kRsmEd
                                              : QueryType::kCnsmEd;
  ed.rho = 0;
  const double ed_eps = CalibrateEpsilon(series, prefix, q, ed,
                                         target_selectivity, max_iters);
  // DTW_ρ <= ED, so the DTW ε reaching the same count is <= ed_eps.
  return CalibrateEpsilon(series, prefix, q, params, target_selectivity,
                          std::max(8, max_iters / 2), ed_eps);
}

}  // namespace kvmatch
