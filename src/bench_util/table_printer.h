// Fixed-width table printing for the per-table bench harnesses, so bench
// output visually mirrors the paper's tables.
#ifndef KVMATCH_BENCH_UTIL_TABLE_PRINTER_H_
#define KVMATCH_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace kvmatch {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders the table to stdout.
  void Print() const;

  static std::string Fmt(double v, int precision = 1);
  static std::string FmtInt(uint64_t v);
  static std::string FmtSci(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kvmatch

#endif  // KVMATCH_BENCH_UTIL_TABLE_PRINTER_H_
