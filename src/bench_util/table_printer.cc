#include "bench_util/table_printer.h"

#include <cstdio>

namespace kvmatch {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_sep = [&] {
    std::printf("+");
    for (size_t wdt : widths) {
      for (size_t k = 0; k < wdt + 2; ++k) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::FmtSci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1e", v);
  return buf;
}

}  // namespace kvmatch
