#include "bench_util/workload.h"

#include <cstdlib>
#include <cstring>

namespace kvmatch {

BenchFlags BenchFlags::Parse(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      flags.n = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      flags.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      flags.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json_out = argv[++i];
    }
  }
  return flags;
}

Workload Workload::Make(size_t n, uint64_t seed, const std::string& kind) {
  Rng rng(seed);
  Workload w;
  w.series = kind == "synthetic" ? GenerateSynthetic(n, &rng)
                                 : GenerateUcrLike(n, &rng);
  w.prefix = PrefixStats(w.series);
  return w;
}

std::vector<double> MakeQuery(const Workload& w, size_t m, Rng* rng,
                              double noise_std) {
  const size_t n = w.series.size();
  const size_t offset =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n - m)));
  return ExtractQuery(w.series, offset, m, noise_std, rng);
}

}  // namespace kvmatch
