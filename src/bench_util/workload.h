// Shared workload construction for the bench harnesses: dataset + query
// generation, flag parsing, and timing helpers.
#ifndef KVMATCH_BENCH_UTIL_WORKLOAD_H_
#define KVMATCH_BENCH_UTIL_WORKLOAD_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ts/generator.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Common command-line knobs:
///   --n <len> --runs <k> --seed <s> --quick [--json OUT]
struct BenchFlags {
  size_t n = 2'000'000;   // series length
  int runs = 3;           // queries per configuration
  uint64_t seed = 42;
  bool quick = false;     // shrink sweeps for smoke-testing
  std::string json_out;   // when set, also emit machine-readable results

  static BenchFlags Parse(int argc, char** argv);
};

/// A dataset with its prefix-stat oracle.
struct Workload {
  TimeSeries series;
  PrefixStats prefix;

  /// "ucr" (default) or "synthetic".
  static Workload Make(size_t n, uint64_t seed,
                       const std::string& kind = "ucr");
};

/// Draws a query of length `m`: a subsequence of the data perturbed with
/// light noise (so matches exist at controllable distances).
std::vector<double> MakeQuery(const Workload& w, size_t m, Rng* rng,
                              double noise_std = 0.05);

/// Wall-clock helper.
class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  double Ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }
  double Seconds() const { return Ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace kvmatch

#endif  // KVMATCH_BENCH_UTIL_WORKLOAD_H_
