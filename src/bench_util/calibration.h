// Selectivity calibration (paper §VIII): the evaluation fixes a target
// selectivity (matches / possible offsets, e.g. 10⁻⁷) and adjusts ε until
// a query reaches it. We binary-search ε against the UCR Suite scan (exact
// and fast enough at bench scale).
#ifndef KVMATCH_BENCH_UTIL_CALIBRATION_H_
#define KVMATCH_BENCH_UTIL_CALIBRATION_H_

#include <span>

#include "baseline/ucr_suite.h"
#include "match/query_types.h"

namespace kvmatch {

/// Finds ε such that the match count of `q` over `series` is close to
/// `target_selectivity * (n - m + 1)` (at least 1 match). Returns the
/// calibrated ε; `params.epsilon` is ignored on input.
///
/// `hi_hint` (> 0) supplies a known upper bracket for ε and skips the
/// doubling phase. Crucial for DTW: bracketing with a huge ε defeats every
/// lower bound and each probe scan degenerates to full DTW per offset.
/// Since DTW_ρ <= ED, the ED-calibrated ε is always a valid DTW bracket —
/// CalibrateEpsilonViaEd exploits exactly that.
double CalibrateEpsilon(const TimeSeries& series, const PrefixStats& prefix,
                        std::span<const double> q, QueryParams params,
                        double target_selectivity, int max_iters = 24,
                        double hi_hint = 0.0);

/// For DTW query types: calibrates the matching ED variant first (cheap),
/// then bisects the DTW ε below that bracket. For ED types this is plain
/// CalibrateEpsilon.
double CalibrateEpsilonViaEd(const TimeSeries& series,
                             const PrefixStats& prefix,
                             std::span<const double> q, QueryParams params,
                             double target_selectivity, int max_iters = 24);

}  // namespace kvmatch

#endif  // KVMATCH_BENCH_UTIL_CALIBRATION_H_
