// kvmatch_cli: end-to-end command-line front-end for the library — the
// workflow a downstream user runs without writing C++.
//
//   kvmatch_cli generate --out data.bin --n 1000000 [--kind ucr|synthetic]
//                        [--seed 42]
//   kvmatch_cli build    --data data.bin --index index.kvm
//                        [--wu 25] [--levels 5] [--width 0.5]
//                        [--threads N]
//   kvmatch_cli info     --index index.kvm
//   kvmatch_cli query    --data data.bin --index index.kvm
//                        --qoffset 1000 --qlen 512 --epsilon 3.0
//                        [--type rsm-ed|rsm-dtw|cnsm-ed|cnsm-dtw]
//                        [--alpha 1.5] [--beta 2.0] [--rho 25] [--limit 10]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "index/index_builder.h"
#include "match/kv_match.h"
#include "matchdp/kv_match_dp.h"
#include "storage/file_kvstore.h"
#include "ts/generator.h"
#include "ts/io.h"

using namespace kvmatch;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  std::string Get(const std::string& key, const std::string& dflt = "") const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetF(const std::string& key, double dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& key) const { return kv.count(key) > 0; }
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.kv[key] = argv[++i];
      } else {
        args.kv[key] = "1";
      }
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: kvmatch_cli <generate|build|info|query> [--flags]\n"
               "see the header of tools/kvmatch_cli.cc for details\n");
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  const size_t n = args.GetU64("n", 1'000'000);
  Rng rng(args.GetU64("seed", 42));
  const TimeSeries x = args.Get("kind", "ucr") == "synthetic"
                           ? GenerateSynthetic(n, &rng)
                           : GenerateUcrLike(n, &rng);
  const Status st = WriteBinary(x, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu points to %s\n", x.size(), out.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  const std::string data_path = args.Get("data");
  const std::string index_path = args.Get("index");
  if (data_path.empty() || index_path.empty()) return Usage();
  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());

  const size_t wu = args.GetU64("wu", 25);
  const size_t levels = args.GetU64("levels", 5);
  const double width = args.GetF("width", 0.5);
  const size_t threads = args.GetU64("threads", 1);

  std::remove(index_path.c_str());
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());

  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    IndexBuildOptions opts;
    opts.window = w;
    opts.width = width;
    const KvIndex index = threads > 1
                              ? BuildKvIndexParallel(*data, opts, threads)
                              : BuildKvIndex(*data, opts);
    const Status st =
        index.Persist(store->get(), "w" + std::to_string(w) + "/");
    if (!st.ok()) return Fail(st);
    std::printf("w=%-4zu rows=%-6zu ~%llu bytes\n", w, index.num_rows(),
                static_cast<unsigned long long>(index.EncodedSizeBytes()));
  }
  // Record the level layout so `query`/`info` can find the indexes.
  std::string layout;
  layout += std::to_string(wu) + " " + std::to_string(levels);
  if (Status st = (*store)->Put("!layout", layout); !st.ok()) return Fail(st);
  if (Status st = (*store)->Flush(); !st.ok()) return Fail(st);
  std::printf("index stack written to %s (%llu bytes on disk)\n",
              index_path.c_str(),
              static_cast<unsigned long long>((*store)->FileBytes()));
  return 0;
}

Result<std::pair<size_t, size_t>> ReadLayout(const KvStore& store) {
  std::string layout;
  KVMATCH_RETURN_NOT_OK(store.Get("!layout", &layout));
  size_t wu = 0, levels = 0;
  if (std::sscanf(layout.c_str(), "%zu %zu", &wu, &levels) != 2) {
    return Status::Corruption("bad !layout row");
  }
  return std::make_pair(wu, levels);
}

int CmdInfo(const Args& args) {
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Usage();
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());
  auto layout = ReadLayout(**store);
  if (!layout.ok()) return Fail(layout.status());
  auto [wu, levels] = *layout;
  std::printf("index stack: wu=%zu levels=%zu file=%llu bytes\n", wu, levels,
              static_cast<unsigned long long>((*store)->FileBytes()));
  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    auto index = KvIndex::Open(store->get(), "w" + std::to_string(w) + "/");
    if (!index.ok()) return Fail(index.status());
    uint64_t intervals = 0, positions = 0;
    for (const auto& m : index->meta()) {
      intervals += m.num_intervals;
      positions += m.num_positions;
    }
    std::printf("  w=%-4zu rows=%-6zu nI=%-9llu nP=%llu\n", w,
                index->meta().size(),
                static_cast<unsigned long long>(intervals),
                static_cast<unsigned long long>(positions));
  }
  return 0;
}

int CmdQuery(const Args& args) {
  const std::string data_path = args.Get("data");
  const std::string index_path = args.Get("index");
  if (data_path.empty() || index_path.empty() || !args.Has("qlen")) {
    return Usage();
  }
  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());
  auto layout = ReadLayout(**store);
  if (!layout.ok()) return Fail(layout.status());
  auto [wu, levels] = *layout;

  std::vector<KvIndex> indexes;
  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    auto index = KvIndex::Open(store->get(), "w" + std::to_string(w) + "/");
    if (!index.ok()) return Fail(index.status());
    index->EnableRowCache(1024);
    indexes.push_back(std::move(index).value());
  }
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : indexes) ptrs.push_back(&index);

  const size_t q_off = args.GetU64("qoffset", 0);
  const size_t q_len = args.GetU64("qlen", 512);
  if (q_off + q_len > data->size()) {
    return Fail(Status::InvalidArgument("query range past end of data"));
  }
  Rng rng(7);
  const auto q = ExtractQuery(*data, q_off, q_len,
                              args.GetF("qnoise", 0.0), &rng);

  QueryParams params;
  const std::string type = args.Get("type", "cnsm-ed");
  if (type == "rsm-ed") params.type = QueryType::kRsmEd;
  else if (type == "rsm-dtw") params.type = QueryType::kRsmDtw;
  else if (type == "cnsm-ed") params.type = QueryType::kCnsmEd;
  else if (type == "cnsm-dtw") params.type = QueryType::kCnsmDtw;
  else if (type == "rsm-l1") params.type = QueryType::kRsmL1;
  else return Usage();
  params.epsilon = args.GetF("epsilon", 1.0);
  params.alpha = args.GetF("alpha", 1.5);
  params.beta = args.GetF("beta", 2.0);
  params.rho = args.GetU64("rho", q_len / 20);

  const PrefixStats prefix(*data);
  const KvMatchDp matcher(*data, prefix, ptrs);
  MatchStats stats;
  auto results = matcher.Match(q, params, &stats);
  if (!results.ok()) return Fail(results.status());

  std::printf("%zu matches | candidates=%llu scans=%llu cache_hits=%llu | "
              "phase1=%.2fms phase2=%.2fms\n",
              results->size(),
              static_cast<unsigned long long>(stats.candidate_positions),
              static_cast<unsigned long long>(stats.probe.index_accesses),
              static_cast<unsigned long long>(stats.probe.cache_hits),
              stats.phase1_ms, stats.phase2_ms);
  const size_t limit = args.GetU64("limit", 10);
  size_t shown = 0;
  for (const auto& m : *results) {
    std::printf("  offset=%-10zu dist=%.4f\n", m.offset, m.distance);
    if (++shown == limit) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "query") return CmdQuery(args);
  return Usage();
}
