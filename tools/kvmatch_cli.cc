// kvmatch_cli: end-to-end command-line front-end for the library — the
// workflow a downstream user runs without writing C++.
//
//   kvmatch_cli generate --out data.bin --n 1000000 [--kind ucr|synthetic]
//                        [--seed 42]
//   kvmatch_cli build    --data data.bin --index index.kvm
//                        [--wu 25] [--levels 5] [--width 0.5]
//                        [--threads N]
//   kvmatch_cli info     --index index.kvm
//   kvmatch_cli query    --data data.bin --index index.kvm
//                        --qoffset 1000 --qlen 512 --epsilon 3.0
//                        [--type rsm-ed|rsm-dtw|cnsm-ed|cnsm-dtw]
//                        [--alpha 1.5] [--beta 2.0] [--rho 25] [--limit 10]
//
// Multi-series service front-end (Catalog + QueryService):
//   kvmatch_cli catalog-ingest --store catalog.kvm --data data.bin
//                              --name sensor1 [--wu 25] [--levels 5]
//                              [--width 0.5]
//   kvmatch_cli catalog-info   --store catalog.kvm [--json]
//     --json emits one machine-readable object: the crash-recovery
//     report, the series directory, and the recovery events the open
//     produced (roll-backs/forwards, orphan sweeps) as a JSON array.
//   kvmatch_cli batch-query    --store catalog.kvm --queries queries.txt
//                              [--threads N] [--queue 1024]
//     queries.txt: one request per line of key=value tokens, e.g.
//       series=sensor1 type=cnsm-ed qoffset=1000 qlen=256 epsilon=3.0
//       series=sensor2 type=rsm-ed qoffset=0 qlen=128 k=10
//     ('#' starts a comment; k>0 switches to top-k search; timeout-ms
//     bounds the request's time in the queue.)
//   kvmatch_cli serve-bench    [--series 8] [--n 1000000] [--threads 4]
//                              [--batch 256] [--qlen 256] [--seed 42]
//
// Network front-end (src/net: wire protocol + TCP server):
//   kvmatch_cli serve        --store catalog.kvm [--port 7777] [--bind ADDR]
//                            [--threads N] [--queue 1024] [--max-conns 64]
//                            [--idle-ms 0] [--stream-chunk 2000000]
//                            [--drain-ms 30000] [--max-outbox-mb 256]
//                            [--slow-query-ms 0]
//                            [--event-log events.jsonl] [--dump-events]
//                            [--slow-commit-ms 0]
//     Serves the catalog until SIGINT/SIGTERM; shutdown drains in-flight
//     queries for --drain-ms, then cancels the stragglers mid-query.
//     Responses with more than --stream-chunk matches stream back in
//     bounded kMatchResponsePart frames (0 disables streaming).
//     --port 0 picks an ephemeral port (printed on stdout).
//     --slow-query-ms > 0 logs every query at least that slow to stderr
//     as one JSON line carrying its queue/probe/verify/serialize spans.
//     --event-log appends every storage/commit event (epoch commits,
//     recovery repairs, evictions, compactions) as JSONL to the given
//     file; --dump-events prints the in-memory flight recorder (the last
//     1024 events) on shutdown; --slow-commit-ms > 0 flags commits at
//     least that slow. GET /metrics (plain HTTP on the same port) serves
//     the Prometheus text dump; GET /healthz answers liveness.
//     With --shard-map map.txt --shard-id N the server joins a cluster:
//     it answers kShardInfo with shard N's identity under that map and
//     refuses ingest for series the map assigns to other shards.
//   kvmatch_cli coord        --shard-map map.txt [--port 7900]
//                            [--bind ADDR] [--threads 4] [--queue 256]
//                            [--shard-timeout-ms 10000] [--max-conns 64]
//     Scatter-gather coordinator over the shards in map.txt (format:
//     one "shard <id> <host> <port>" line per shard). Exact-series
//     queries are routed to the owner shard and answered byte-identical
//     to asking it directly; series patterns ('*'/'?') fan out to every
//     shard and merge into a kFederatedResponse. Ingest and LIST route
//     through the map; kCancel fans out to every shard a request
//     touched. A dead shard degrades pattern queries to typed partial
//     results instead of hanging.
//   kvmatch_cli remote-query --host 127.0.0.1 --port 7777 --queries q.txt
//                            [--trace] [--trace-json trace.json]
//     Same query-file syntax as batch-query; qoffset/qlen windows are
//     resolved by the server (queries travel by reference, not by value).
//     --trace asks the server for per-stage spans and prints a
//     queue/probe/verify/serialize breakdown under each query;
//     --trace-json additionally writes all traces as one chrome://tracing
//     (or ui.perfetto.dev) document, one pid per query.
//   kvmatch_cli remote-cancel --host 127.0.0.1 --port 7777 --queries q.txt
//                             [--after-ms 100]
//     Pipelines the queries, waits --after-ms, then sends kCancel for
//     every one still outstanding and prints each final status — the
//     abort path a dashboard uses when a user navigates away. Queries
//     that finished before the cancel print their results normally.
//   kvmatch_cli remote-bench --host 127.0.0.1 --port 7777 [--clients 4]
//                            [--batch 64] [--qlen 256] [--seed 42]
//     Pipelined load from N concurrent client connections; reports QPS.
//   kvmatch_cli remote-ingest --host 127.0.0.1 --port 7777 --name sensor1
//                             --data data.bin [--chunk 262144] [--replace]
//                             [--append]
//     Registers (or, with --append, extends) a series on a running server
//     without filesystem access to its store: a CREATE frame with the
//     first chunk, then chunked APPEND frames. --replace drops an
//     existing series of the same name first. Queries keep running
//     throughout — each one completes on the epoch it pinned.
//   kvmatch_cli remote-drop  --host 127.0.0.1 --port 7777 --name sensor1
//     Unregisters a series; in-flight queries complete on their epoch.
//   kvmatch_cli stats        --host 127.0.0.1 --port 7777 [--watch SEC]
//     Prints the server's Prometheus-style stats dump. With --watch it
//     re-polls every SEC seconds until Ctrl-C, printing only the metrics
//     that changed (as deltas) — live monitoring during benches.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/table_printer.h"
#include "common/event_log.h"
#include "coord/coord_server.h"
#include "coord/shard_map.h"
#include "net/client.h"
#include "net/server.h"
#include "bench_util/workload.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "matchdp/kv_match_dp.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/file_kvstore.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"
#include "ts/io.h"

using namespace kvmatch;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  std::string Get(const std::string& key, const std::string& dflt = "") const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetF(const std::string& key, double dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& key) const { return kv.count(key) > 0; }
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.kv[key] = argv[++i];
      } else {
        args.kv[key] = "1";
      }
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: kvmatch_cli <generate|build|info|query|"
               "catalog-ingest|catalog-info|batch-query|serve-bench|"
               "serve|coord|remote-query|remote-cancel|remote-bench|"
               "remote-ingest|remote-drop|stats> [--flags]\n"
               "see the header of tools/kvmatch_cli.cc for details\n");
  return 2;
}

bool ParseQueryType(const std::string& name, QueryType* type) {
  if (name == "rsm-ed") *type = QueryType::kRsmEd;
  else if (name == "rsm-dtw") *type = QueryType::kRsmDtw;
  else if (name == "cnsm-ed") *type = QueryType::kCnsmEd;
  else if (name == "cnsm-dtw") *type = QueryType::kCnsmDtw;
  else if (name == "rsm-l1") *type = QueryType::kRsmL1;
  else return false;
  return true;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  const size_t n = args.GetU64("n", 1'000'000);
  Rng rng(args.GetU64("seed", 42));
  const TimeSeries x = args.Get("kind", "ucr") == "synthetic"
                           ? GenerateSynthetic(n, &rng)
                           : GenerateUcrLike(n, &rng);
  const Status st = WriteBinary(x, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu points to %s\n", x.size(), out.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  const std::string data_path = args.Get("data");
  const std::string index_path = args.Get("index");
  if (data_path.empty() || index_path.empty()) return Usage();
  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());

  const size_t wu = args.GetU64("wu", 25);
  const size_t levels = args.GetU64("levels", 5);
  const double width = args.GetF("width", 0.5);
  const size_t threads = args.GetU64("threads", 1);

  std::remove(index_path.c_str());
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());

  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    IndexBuildOptions opts;
    opts.window = w;
    opts.width = width;
    const KvIndex index = threads > 1
                              ? BuildKvIndexParallel(*data, opts, threads)
                              : BuildKvIndex(*data, opts);
    const Status st =
        index.Persist(store->get(), "w" + std::to_string(w) + "/");
    if (!st.ok()) return Fail(st);
    std::printf("w=%-4zu rows=%-6zu ~%llu bytes\n", w, index.num_rows(),
                static_cast<unsigned long long>(index.EncodedSizeBytes()));
  }
  // Record the level layout so `query`/`info` can find the indexes.
  std::string layout;
  layout += std::to_string(wu) + " " + std::to_string(levels);
  if (Status st = (*store)->Put("!layout", layout); !st.ok()) return Fail(st);
  if (Status st = (*store)->Flush(); !st.ok()) return Fail(st);
  std::printf("index stack written to %s (%llu bytes on disk)\n",
              index_path.c_str(),
              static_cast<unsigned long long>((*store)->FileBytes()));
  return 0;
}

Result<std::pair<size_t, size_t>> ReadLayout(const KvStore& store) {
  std::string layout;
  KVMATCH_RETURN_NOT_OK(store.Get("!layout", &layout));
  size_t wu = 0, levels = 0;
  if (std::sscanf(layout.c_str(), "%zu %zu", &wu, &levels) != 2) {
    return Status::Corruption("bad !layout row");
  }
  return std::make_pair(wu, levels);
}

int CmdInfo(const Args& args) {
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Usage();
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());
  auto layout = ReadLayout(**store);
  if (!layout.ok()) return Fail(layout.status());
  auto [wu, levels] = *layout;
  std::printf("index stack: wu=%zu levels=%zu file=%llu bytes\n", wu, levels,
              static_cast<unsigned long long>((*store)->FileBytes()));
  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    auto index = KvIndex::Open(store->get(), "w" + std::to_string(w) + "/");
    if (!index.ok()) return Fail(index.status());
    uint64_t intervals = 0, positions = 0;
    for (const auto& m : index->meta()) {
      intervals += m.num_intervals;
      positions += m.num_positions;
    }
    std::printf("  w=%-4zu rows=%-6zu nI=%-9llu nP=%llu\n", w,
                index->meta().size(),
                static_cast<unsigned long long>(intervals),
                static_cast<unsigned long long>(positions));
  }
  return 0;
}

int CmdQuery(const Args& args) {
  const std::string data_path = args.Get("data");
  const std::string index_path = args.Get("index");
  if (data_path.empty() || index_path.empty() || !args.Has("qlen")) {
    return Usage();
  }
  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());
  auto store = FileKvStore::Open(index_path);
  if (!store.ok()) return Fail(store.status());
  auto layout = ReadLayout(**store);
  if (!layout.ok()) return Fail(layout.status());
  auto [wu, levels] = *layout;

  std::vector<KvIndex> indexes;
  size_t w = wu;
  for (size_t level = 0; level < levels; ++level, w *= 2) {
    auto index = KvIndex::Open(store->get(), "w" + std::to_string(w) + "/");
    if (!index.ok()) return Fail(index.status());
    index->EnableRowCache(1024);
    indexes.push_back(std::move(index).value());
  }
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : indexes) ptrs.push_back(&index);

  const size_t q_off = args.GetU64("qoffset", 0);
  const size_t q_len = args.GetU64("qlen", 512);
  if (q_off > data->size() || q_len > data->size() - q_off) {
    return Fail(Status::InvalidArgument("query range past end of data"));
  }
  Rng rng(7);
  const auto q = ExtractQuery(*data, q_off, q_len,
                              args.GetF("qnoise", 0.0), &rng);

  QueryParams params;
  if (!ParseQueryType(args.Get("type", "cnsm-ed"), &params.type)) {
    return Usage();
  }
  params.epsilon = args.GetF("epsilon", 1.0);
  params.alpha = args.GetF("alpha", 1.5);
  params.beta = args.GetF("beta", 2.0);
  params.rho = args.GetU64("rho", q_len / 20);

  const PrefixStats prefix(*data);
  const KvMatchDp matcher(*data, prefix, ptrs);
  MatchStats stats;
  auto results = matcher.Match(q, params, &stats);
  if (!results.ok()) return Fail(results.status());

  std::printf("%zu matches | candidates=%llu scans=%llu cache_hits=%llu | "
              "phase1=%.2fms phase2=%.2fms\n",
              results->size(),
              static_cast<unsigned long long>(stats.candidate_positions),
              static_cast<unsigned long long>(stats.probe.index_accesses),
              static_cast<unsigned long long>(stats.probe.cache_hits),
              stats.phase1_ms, stats.phase2_ms);
  const size_t limit = args.GetU64("limit", 10);
  size_t shown = 0;
  for (const auto& m : *results) {
    std::printf("  offset=%-10zu dist=%.4f\n", m.offset, m.distance);
    if (++shown == limit) break;
  }
  return 0;
}

// ------------------------------------------------------------------------
// Multi-series service commands.

int CmdCatalogIngest(const Args& args) {
  const std::string store_path = args.Get("store");
  const std::string data_path = args.Get("data");
  const std::string name = args.Get("name");
  if (store_path.empty() || data_path.empty() || name.empty()) return Usage();
  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());

  auto store = FileKvStore::Open(store_path);
  if (!store.ok()) return Fail(store.status());

  Catalog::Options copts;
  copts.session.wu = args.GetU64("wu", 25);
  copts.session.levels = args.GetU64("levels", 5);
  copts.session.width = args.GetF("width", 0.5);
  Catalog catalog(store->get(), copts);
  const size_t points = data->size();
  if (Status st = catalog.Ingest(name, std::move(data).value()); !st.ok()) {
    return Fail(st);
  }
  std::printf("ingested '%s' (%zu points, wu=%zu levels=%zu) into %s "
              "(%llu bytes, %zu series)\n",
              name.c_str(), points, copts.session.wu, copts.session.levels,
              store_path.c_str(),
              static_cast<unsigned long long>((*store)->FileBytes()),
              catalog.ListSeries().size());
  return 0;
}

int CmdCatalogInfo(const Args& args) {
  const std::string store_path = args.Get("store");
  if (store_path.empty()) return Usage();
  auto store = FileKvStore::Open(store_path);
  if (!store.ok()) return Fail(store.status());
  // The event journal captures what recovery repaired while opening; the
  // ring is what --json surfaces as structured events.
  EventLog event_log;
  Catalog::Options copts;
  copts.event_log = &event_log;
  Catalog catalog(store->get(), copts);
  if (args.Has("json")) {
    const auto& rec = catalog.recovery_report();
    std::string out = "{\"recovery\":{\"epochs_rolled_back\":" +
                      std::to_string(rec.epochs_rolled_back) +
                      ",\"epochs_rolled_forward\":" +
                      std::to_string(rec.epochs_rolled_forward) +
                      ",\"orphans_swept\":" +
                      std::to_string(rec.orphans_swept) + "},\"series\":[";
    bool first = true;
    for (const auto& name : catalog.ListSeries()) {
      uint64_t epoch = 0, length = 0;
      if (auto e = catalog.SeriesEpoch(name); e.ok()) epoch = *e;
      if (auto l = catalog.SeriesLength(name); l.ok()) length = *l;
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + JsonEscape(name) +
             "\",\"points\":" + std::to_string(length) +
             ",\"epoch\":" + std::to_string(epoch) + "}";
    }
    out += "],\"events\":[";
    first = true;
    for (const auto& line : event_log.RingLines()) {
      if (!first) out += ',';
      first = false;
      out += line;  // ring lines are already JSON objects
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }
  if (const auto& rec = catalog.recovery_report(); !rec.clean()) {
    std::printf("crash recovery: %llu epoch(s) rolled back, %llu rolled "
                "forward, %llu orphaned namespace(s) swept\n",
                static_cast<unsigned long long>(rec.epochs_rolled_back),
                static_cast<unsigned long long>(rec.epochs_rolled_forward),
                static_cast<unsigned long long>(rec.orphans_swept));
  }
  TablePrinter table({"Series", "Points", "Epoch", "Indexes",
                      "Memory (MB)"});
  for (const auto& name : catalog.ListSeries()) {
    auto session = catalog.Acquire(name);
    if (!session.ok()) return Fail(session.status());
    uint64_t epoch = 0;
    if (auto e = catalog.SeriesEpoch(name); e.ok()) epoch = *e;
    table.AddRow({name, TablePrinter::FmtInt((*session)->series().size()),
                  TablePrinter::FmtInt(epoch),
                  TablePrinter::FmtInt((*session)->num_indexes()),
                  TablePrinter::Fmt(
                      static_cast<double>((*session)->MemoryBytes()) / 1e6,
                      1)});
  }
  table.Print();
  return 0;
}

/// Parses one query-file line of key=value tokens into a request plus the
/// qoffset/qlen window the query values come from. Shared by the local
/// batch-query path (which extracts the window itself) and remote-query
/// (which ships the window by reference for the server to extract).
Status ParseRequestTokens(const std::string& line, QueryRequest* out,
                          size_t* qoffset_out, size_t* qlen_out) {
  QueryRequest req;
  size_t qoffset = 0, qlen = 0;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad token: " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "series") req.series = value;
    else if (key == "type") {
      if (!ParseQueryType(value, &req.params.type)) {
        return Status::InvalidArgument("bad query type: " + value);
      }
    }
    else if (key == "qoffset") qoffset = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "qlen") qlen = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "epsilon") req.params.epsilon = std::strtod(value.c_str(), nullptr);
    else if (key == "alpha") req.params.alpha = std::strtod(value.c_str(), nullptr);
    else if (key == "beta") req.params.beta = std::strtod(value.c_str(), nullptr);
    else if (key == "rho") req.params.rho = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "k") req.top_k = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "timeout-ms") req.timeout_ms = std::strtod(value.c_str(), nullptr);
    else return Status::InvalidArgument("unknown key: " + key);
  }
  if (req.series.empty() || qlen == 0) {
    return Status::InvalidArgument("line needs series=... and qlen=...");
  }
  *out = std::move(req);
  *qoffset_out = qoffset;
  *qlen_out = qlen;
  return Status::OK();
}

/// batch-query form: resolves the window against the local catalog.
Result<QueryRequest> ParseRequestLine(const std::string& line,
                                      Catalog* catalog) {
  QueryRequest req;
  size_t qoffset = 0, qlen = 0;
  KVMATCH_RETURN_NOT_OK(ParseRequestTokens(line, &req, &qoffset, &qlen));
  auto session = catalog->Acquire(req.series);
  if (!session.ok()) return session.status();
  const size_t series_len = (*session)->series().size();
  if (qoffset > series_len || qlen > series_len - qoffset) {
    return Status::InvalidArgument("query range past end of " + req.series);
  }
  const auto span = (*session)->series().Subsequence(qoffset, qlen);
  req.query.assign(span.begin(), span.end());
  return req;
}

/// remote-query form: the window stays a by-reference (offset, length)
/// pair that the server resolves.
Result<net::WireQueryRequest> ParseWireRequestLine(const std::string& line) {
  net::WireQueryRequest wire;
  size_t qoffset = 0, qlen = 0;
  KVMATCH_RETURN_NOT_OK(
      ParseRequestTokens(line, &wire.request, &qoffset, &qlen));
  wire.by_reference = true;
  wire.ref_offset = qoffset;
  wire.ref_length = qlen;
  return wire;
}

void PrintServiceStats(const ServiceStatsSnapshot& snap) {
  TablePrinter table({"Series", "Queries", "Errors", "QPS", "Min (ms)",
                      "Mean (ms)", "p99 (ms)", "Candidates", "Scans"});
  for (const auto& s : snap.series) {
    table.AddRow({s.series, TablePrinter::FmtInt(s.queries),
                  TablePrinter::FmtInt(s.errors),
                  TablePrinter::Fmt(s.qps, 1),
                  TablePrinter::Fmt(s.latency.min_ms, 2),
                  TablePrinter::Fmt(s.latency.mean_ms, 2),
                  TablePrinter::Fmt(s.latency.p99_ms, 2),
                  TablePrinter::FmtInt(s.match.candidate_positions),
                  TablePrinter::FmtInt(s.match.probe.index_accesses)});
  }
  table.Print();
  std::printf("total: %llu queries (%llu errors, %llu shed, %llu expired, "
              "%llu unknown) in %.2fs | mean=%.2fms p99=%.2fms\n",
              static_cast<unsigned long long>(snap.total_queries),
              static_cast<unsigned long long>(snap.total_errors),
              static_cast<unsigned long long>(snap.rejected),
              static_cast<unsigned long long>(snap.deadline_exceeded),
              static_cast<unsigned long long>(snap.not_found),
              snap.elapsed_seconds, snap.latency.mean_ms,
              snap.latency.p99_ms);
}

int CmdBatchQuery(const Args& args) {
  const std::string store_path = args.Get("store");
  const std::string queries_path = args.Get("queries");
  if (store_path.empty() || queries_path.empty()) return Usage();
  auto store = FileKvStore::Open(store_path);
  if (!store.ok()) return Fail(store.status());
  Catalog catalog(store->get());

  std::ifstream in(queries_path);
  if (!in) {
    return Fail(Status::IOError("cannot open " + queries_path));
  }
  std::vector<QueryRequest> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto req = ParseRequestLine(line, &catalog);
    if (!req.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", queries_path.c_str(), lineno,
                   req.status().ToString().c_str());
      return 1;
    }
    requests.push_back(std::move(req).value());
  }
  if (requests.empty()) {
    return Fail(Status::InvalidArgument("no queries in " + queries_path));
  }

  QueryService::Options sopts;
  sopts.num_threads = args.GetU64("threads", 4);
  sopts.max_queue = args.GetU64("queue", 1024);
  QueryService service(&catalog, sopts);

  auto futures = service.SubmitBatch(requests);
  const size_t limit = args.GetU64("limit", 3);
  for (size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse response = futures[i].get();
    if (!response.status.ok()) {
      std::printf("[%zu] %s: %s\n", i, requests[i].series.c_str(),
                  response.status.ToString().c_str());
      continue;
    }
    std::printf("[%zu] %s: %zu matches in %.2fms\n", i,
                requests[i].series.c_str(), response.matches.size(),
                response.latency_ms);
    for (size_t j = 0; j < response.matches.size() && j < limit; ++j) {
      std::printf("      offset=%-10zu dist=%.4f\n",
                  response.matches[j].offset, response.matches[j].distance);
    }
  }
  std::printf("\n");
  PrintServiceStats(service.Stats());
  return 0;
}

int CmdServeBench(const Args& args) {
  const size_t num_series = args.GetU64("series", 8);
  const size_t total_points = args.GetU64("n", 1'000'000);
  const size_t qlen = args.GetU64("qlen", 256);
  const size_t batch = args.GetU64("batch", 256);
  const uint64_t seed = args.GetU64("seed", 42);
  const size_t per_series = std::max<size_t>(total_points / num_series,
                                             4 * qlen);

  MemKvStore store;
  Catalog catalog(&store);
  for (size_t i = 0; i < num_series; ++i) {
    Rng rng(seed + i);
    if (Status st = catalog.Ingest("bench" + std::to_string(i),
                                   GenerateUcrLike(per_series, &rng));
        !st.ok()) {
      return Fail(st);
    }
  }
  std::printf("catalog: %zu series x %zu points\n", num_series, per_series);

  Rng rng(seed + 1000);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < batch; ++i) {
    const std::string name = "bench" + std::to_string(i % num_series);
    auto session = catalog.Acquire(name);
    if (!session.ok()) return Fail(session.status());
    QueryRequest req;
    req.series = name;
    const size_t qoff = (1237 * i) % (per_series - qlen);
    req.query = ExtractQuery((*session)->series(), qoff, qlen, 0.05, &rng);
    req.params.type = i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
    req.params.epsilon = 3.0;
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    requests.push_back(std::move(req));
  }

  QueryService::Options sopts;
  sopts.num_threads = args.GetU64("threads", 4);
  sopts.max_queue = 2 * batch;
  QueryService service(&catalog, sopts);
  service.ResetStats();

  Stopwatch sw;
  auto futures = service.SubmitBatch(requests);
  for (auto& f : futures) f.wait();
  const double seconds = sw.Seconds();

  std::printf("%zu queries on %zu threads: %.2fs (%.1f QPS aggregate)\n\n",
              batch, service.num_threads(), seconds,
              static_cast<double>(batch) / seconds);
  PrintServiceStats(service.Stats());
  return 0;
}

// ------------------------------------------------------------------------
// Network front-end commands.

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

int CmdServe(const Args& args) {
  const std::string store_path = args.Get("store");
  if (store_path.empty()) return Usage();
  auto store = FileKvStore::Open(store_path);
  if (!store.ok()) return Fail(store.status());

  // Declared before the catalog so every emitter dies first. The optional
  // file sink streams each event as it happens; the in-memory ring (the
  // flight recorder) is dumped by Stop() with --dump-events.
  EventLog event_log;
  std::ofstream event_file;
  if (const std::string path = args.Get("event-log"); !path.empty()) {
    event_file.open(path, std::ios::app);
    if (!event_file) return Fail(Status::IOError("cannot open " + path));
    event_log.SetSink([&event_file](const std::string& line) {
      event_file << line << '\n';
      event_file.flush();
    });
  }

  Catalog::Options copts;
  copts.event_log = &event_log;
  copts.slow_commit_ms = args.GetF("slow-commit-ms", 0.0);
  Catalog catalog(store->get(), copts);
  if (const auto& rec = catalog.recovery_report(); !rec.clean()) {
    std::printf("crash recovery: %llu epoch(s) rolled back, %llu rolled "
                "forward, %llu orphaned namespace(s) swept\n",
                static_cast<unsigned long long>(rec.epochs_rolled_back),
                static_cast<unsigned long long>(rec.epochs_rolled_forward),
                static_cast<unsigned long long>(rec.orphans_swept));
  }

  QueryService::Options sopts;
  sopts.num_threads = args.GetU64("threads", 4);
  sopts.max_queue = args.GetU64("queue", 1024);
  QueryService service(&catalog, sopts);
  catalog.SetStatsRegistry(service.stats_registry());

  net::Server::Options nopts;
  nopts.bind_address = args.Get("bind", "127.0.0.1");
  nopts.port = static_cast<int>(args.GetU64("port", 7777));
  nopts.max_connections = args.GetU64("max-conns", 64);
  nopts.idle_timeout_ms = args.GetF("idle-ms", 0.0);
  nopts.stream_chunk_matches = args.GetU64("stream-chunk", 2'000'000);
  nopts.drain_timeout_ms = args.GetF("drain-ms", 30'000.0);
  nopts.max_outbox_bytes = args.GetU64("max-outbox-mb", 256) << 20;
  nopts.slow_query_ms = args.GetF("slow-query-ms", 0.0);
  nopts.event_log = &event_log;
  nopts.dump_events_on_stop = args.Has("dump-events");
  // Cluster membership: with --shard-map and --shard-id this process
  // serves one slice of the hash space — it answers kShardInfo with its
  // identity and refuses ingest for series the map assigns elsewhere.
  coord::ShardMap shard_map;
  if (const std::string map_path = args.Get("shard-map");
      !map_path.empty()) {
    if (!args.Has("shard-id")) {
      std::fprintf(stderr, "--shard-map requires --shard-id\n");
      return 2;
    }
    auto loaded = coord::ShardMap::Load(map_path);
    if (!loaded.ok()) return Fail(loaded.status());
    shard_map = std::move(*loaded);
    const uint32_t shard_id =
        static_cast<uint32_t>(args.GetU64("shard-id", 0));
    if (shard_id >= shard_map.num_shards()) {
      std::fprintf(stderr, "--shard-id %u out of range (map has %zu)\n",
                   shard_id, shard_map.num_shards());
      return 2;
    }
    nopts.shard_id = shard_id;
    nopts.num_shards = static_cast<uint32_t>(shard_map.num_shards());
    nopts.shard_map_fingerprint = shard_map.Fingerprint();
    nopts.owns_series = [&shard_map, shard_id](const std::string& name) {
      return shard_map.OwnerOf(name) == shard_id;
    };
  }
  net::Server server(&catalog, &service, nopts);
  if (Status st = server.Start(); !st.ok()) return Fail(st);

  std::printf("serving %zu series on %s:%d (%zu workers, queue %zu); "
              "Ctrl-C to stop\n",
              catalog.ListSeries().size(), nopts.bind_address.c_str(),
              server.port(), service.num_threads(), sopts.max_queue);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining %zu connection(s)...\n", server.ActiveConnections());
  server.Stop();
  PrintServiceStats(service.Stats());
  return 0;
}

int CmdCoord(const Args& args) {
  const std::string map_path = args.Get("shard-map");
  if (map_path.empty()) return Usage();
  auto map = coord::ShardMap::Load(map_path);
  if (!map.ok()) return Fail(map.status());

  coord::CoordServer::CoordOptions opts;
  opts.server.bind_address = args.Get("bind", "127.0.0.1");
  opts.server.port = static_cast<int>(args.GetU64("port", 7900));
  opts.server.max_connections = args.GetU64("max-conns", 64);
  opts.server.idle_timeout_ms = args.GetF("idle-ms", 0.0);
  opts.server.stream_chunk_matches =
      args.GetU64("stream-chunk", 2'000'000);
  opts.server.drain_timeout_ms = args.GetF("drain-ms", 30'000.0);
  opts.server.max_outbox_bytes = args.GetU64("max-outbox-mb", 256) << 20;
  opts.coord.client.call_timeout_ms = args.GetF("shard-timeout-ms",
                                                10'000.0);
  opts.num_threads = args.GetU64("threads", 4);
  opts.max_queue = args.GetU64("queue", 256);

  const size_t num_shards = map->num_shards();
  const uint64_t fingerprint = map->Fingerprint();
  coord::CoordServer server(std::move(*map), opts);
  if (Status st = server.Start(); !st.ok()) return Fail(st);

  std::printf("coordinating %zu shard(s) on %s:%d "
              "(map fingerprint %016llx); Ctrl-C to stop\n",
              num_shards, opts.server.bind_address.c_str(), server.port(),
              static_cast<unsigned long long>(fingerprint));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining %zu connection(s)...\n", server.ActiveConnections());
  server.Stop();
  return 0;
}

int CmdRemoteQuery(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  const std::string queries_path = args.Get("queries");
  if (queries_path.empty()) return Usage();

  std::ifstream in(queries_path);
  if (!in) return Fail(Status::IOError("cannot open " + queries_path));
  std::vector<net::WireQueryRequest> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto req = ParseWireRequestLine(line);
    if (!req.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", queries_path.c_str(), lineno,
                   req.status().ToString().c_str());
      return 1;
    }
    requests.push_back(std::move(req).value());
  }
  if (requests.empty()) {
    return Fail(Status::InvalidArgument("no queries in " + queries_path));
  }
  const bool want_trace = args.Has("trace") || args.Has("trace-json");
  if (want_trace) {
    for (auto& req : requests) req.request.collect_trace = true;
  }

  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  // Pipeline every request, then collect; the server streams responses in
  // completion order and the client re-sorts by request id.
  std::vector<uint64_t> ids;
  for (const auto& req : requests) {
    auto id = (*client)->SendRequest(req);
    if (!id.ok()) return Fail(id.status());
    ids.push_back(*id);
  }
  const size_t limit = args.GetU64("limit", 3);
  std::string trace_events;  // combined chrome://tracing doc (--trace-json)
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = (*client)->WaitResponse(ids[i]);
    if (!response.ok()) return Fail(response.status());
    if (!response->status.ok()) {
      std::printf("[%zu] %s: %s\n", i, requests[i].request.series.c_str(),
                  response->status.ToString().c_str());
      continue;
    }
    std::printf("[%zu] %s: %zu matches in %.2fms\n", i,
                requests[i].request.series.c_str(),
                response->matches.size(), response->latency_ms);
    for (size_t j = 0; j < response->matches.size() && j < limit; ++j) {
      std::printf("      offset=%-10zu dist=%.4f\n",
                  response->matches[j].offset,
                  response->matches[j].distance);
    }
    if (want_trace && response->trace != nullptr) {
      const StageBreakdown b = ComputeStageBreakdown(*response->trace);
      const double total = response->latency_ms;
      std::printf("      trace: queue=%.2fms probe=%.2fms verify=%.2fms "
                  "serialize=%.2fms | stages sum %.2fms = %.0f%% of "
                  "%.2fms total\n",
                  b.queue_ms, b.probe_ms, b.verify_ms, b.serialize_ms,
                  b.TotalMs(),
                  total > 0.0 ? 100.0 * b.TotalMs() / total : 0.0, total);
      AppendChromeTraceEvents(*response->trace, /*pid=*/i, &trace_events);
    }
  }
  if (const std::string path = args.Get("trace-json"); !path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Fail(Status::IOError("cannot write " + path));
    out << "{\"traceEvents\":[" << trace_events << "]}\n";
    std::printf("wrote %s (load it in chrome://tracing or "
                "ui.perfetto.dev)\n",
                path.c_str());
  }
  return 0;
}

int CmdRemoteCancel(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  const std::string queries_path = args.Get("queries");
  if (queries_path.empty()) return Usage();
  const double after_ms = args.GetF("after-ms", 100.0);

  std::ifstream in(queries_path);
  if (!in) return Fail(Status::IOError("cannot open " + queries_path));
  std::vector<net::WireQueryRequest> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto req = ParseWireRequestLine(line);
    if (!req.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", queries_path.c_str(), lineno,
                   req.status().ToString().c_str());
      return 1;
    }
    requests.push_back(std::move(req).value());
  }
  if (requests.empty()) {
    return Fail(Status::InvalidArgument("no queries in " + queries_path));
  }

  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  std::vector<uint64_t> ids;
  for (const auto& req : requests) {
    auto id = (*client)->SendRequest(req);
    if (!id.ok()) return Fail(id.status());
    ids.push_back(*id);
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      after_ms));
  for (uint64_t id : ids) {
    if (Status st = (*client)->Cancel(id); !st.ok()) return Fail(st);
  }

  size_t cancelled = 0, finished = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = (*client)->WaitResponse(ids[i]);
    if (!response.ok()) return Fail(response.status());
    if (response->status.IsCancelled()) {
      ++cancelled;
      std::printf("[%zu] %s: cancelled after %llu candidates verified\n", i,
                  requests[i].request.series.c_str(),
                  static_cast<unsigned long long>(
                      response->stats.distance_calls +
                      response->stats.lb_pruned +
                      response->stats.constraint_pruned));
    } else if (!response->status.ok()) {
      std::printf("[%zu] %s: %s\n", i, requests[i].request.series.c_str(),
                  response->status.ToString().c_str());
    } else {
      ++finished;
      std::printf("[%zu] %s: finished first — %zu matches in %.2fms\n", i,
                  requests[i].request.series.c_str(),
                  response->matches.size(), response->latency_ms);
    }
  }
  std::printf("%zu cancelled, %zu finished before the cancel landed\n",
              cancelled, finished);
  return 0;
}

int CmdRemoteBench(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  const size_t clients = std::max<uint64_t>(args.GetU64("clients", 4), 1);
  const size_t batch = std::max<uint64_t>(args.GetU64("batch", 64), 1);
  const size_t qlen = args.GetU64("qlen", 256);
  const uint64_t seed = args.GetU64("seed", 42);

  auto probe = net::Client::Connect(host, port);
  if (!probe.ok()) return Fail(probe.status());
  auto series = (*probe)->ListSeries();
  if (!series.ok()) return Fail(series.status());
  std::vector<net::SeriesInfo> usable;
  for (const auto& s : *series) {
    if (s.length > qlen) usable.push_back(s);
  }
  if (usable.empty()) {
    return Fail(Status::InvalidArgument(
        "no series on the server is longer than qlen=" +
        std::to_string(qlen)));
  }

  std::vector<std::thread> threads;
  std::vector<size_t> completed(clients, 0);
  std::vector<Status> failures(clients);
  Stopwatch sw;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect(host, port);
      if (!client.ok()) {
        failures[c] = client.status();
        return;
      }
      std::vector<uint64_t> ids;
      for (size_t i = 0; i < batch; ++i) {
        const auto& target = usable[(c + i) % usable.size()];
        net::WireQueryRequest wire;
        wire.request.series = target.name;
        wire.request.params.type =
            i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
        wire.request.params.epsilon = 3.0;
        wire.request.params.alpha = 1.5;
        wire.request.params.beta = 3.0;
        wire.by_reference = true;
        wire.ref_length = qlen;
        wire.ref_offset =
            (seed + 1237 * (c * batch + i)) % (target.length - qlen);
        auto id = (*client)->SendRequest(wire);
        if (!id.ok()) {
          failures[c] = id.status();
          return;
        }
        ids.push_back(*id);
      }
      for (uint64_t id : ids) {
        auto response = (*client)->WaitResponse(id);
        if (!response.ok()) {
          failures[c] = response.status();
          return;
        }
        if (response->status.ok()) completed[c] += 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = sw.Seconds();

  size_t total = 0;
  for (size_t c = 0; c < clients; ++c) {
    if (!failures[c].ok()) return Fail(failures[c]);
    total += completed[c];
  }
  std::printf("%zu clients x %zu pipelined queries: %zu ok in %.2fs "
              "(%.1f QPS aggregate)\n",
              clients, batch, total, seconds,
              static_cast<double>(total) / seconds);
  return 0;
}

int CmdRemoteIngest(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  const std::string name = args.Get("name");
  const std::string data_path = args.Get("data");
  if (name.empty() || data_path.empty()) return Usage();
  const size_t chunk = std::max<uint64_t>(args.GetU64("chunk", 262'144), 1);

  auto data = ReadBinary(data_path);
  if (!data.ok()) return Fail(data.status());
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  if (args.Has("replace")) {
    if (Status st = (*client)->DropSeries(name);
        !st.ok() && !st.IsNotFound()) {
      return Fail(st);
    }
  }

  const auto& values = data->values();
  size_t offset = 0;
  net::IngestAck ack;
  if (!args.Has("append")) {
    const size_t first = std::min(chunk, values.size());
    auto created = (*client)->CreateSeries(
        name, std::span<const double>(values.data(), first));
    if (!created.ok()) return Fail(created.status());
    ack = *created;
    offset = first;
  }
  size_t frames = args.Has("append") ? 0 : 1;
  while (offset < values.size()) {
    const size_t len = std::min(chunk, values.size() - offset);
    auto appended = (*client)->AppendSeries(
        name, std::span<const double>(values.data() + offset, len));
    if (!appended.ok()) return Fail(appended.status());
    ack = *appended;
    offset += len;
    ++frames;
  }
  std::printf("ingested %zu points into '%s' over %zu frame(s); now at "
              "epoch %llu, %llu points\n",
              values.size(), name.c_str(), frames,
              static_cast<unsigned long long>(ack.epoch),
              static_cast<unsigned long long>(ack.length));
  return 0;
}

int CmdRemoteDrop(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  const std::string name = args.Get("name");
  if (name.empty()) return Usage();
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  if (Status st = (*client)->DropSeries(name); !st.ok()) return Fail(st);
  std::printf("dropped '%s'\n", name.c_str());
  return 0;
}

/// Parses a Prometheus-style dump into {metric-with-labels: value}.
std::map<std::string, double> ParseMetrics(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    out[line.substr(0, sp)] = std::strtod(line.c_str() + sp + 1, nullptr);
  }
  return out;
}

int CmdStats(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetU64("port", 7777));
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  auto text = (*client)->StatsText();
  if (!text.ok()) return Fail(text.status());
  std::fputs(text->c_str(), stdout);

  const double watch_sec = args.GetF("watch", 0.0);
  if (watch_sec <= 0.0) return 0;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  auto prev = ParseMetrics(*text);
  size_t tick = 0;
  while (!g_shutdown.load()) {
    // Sleep in short slices so Ctrl-C lands promptly mid-interval.
    const auto wake =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(watch_sec));
    while (!g_shutdown.load() && std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_shutdown.load()) break;
    auto poll = (*client)->StatsText();
    if (!poll.ok()) return Fail(poll.status());
    auto cur = ParseMetrics(*poll);
    std::printf("--- t+%.0fs ---\n", ++tick * watch_sec);
    for (const auto& [name, value] : cur) {
      // Clocks tick on their own; only activity deltas are interesting.
      if (name == "kvmatch_uptime_seconds" ||
          name.find("age_seconds") != std::string::npos) {
        continue;
      }
      const auto it = prev.find(name);
      const double delta = it == prev.end() ? value : value - it->second;
      if (delta != 0.0) {
        std::printf("%-56s %+.6g (now %.6g)\n", name.c_str(), delta, value);
      }
    }
    std::fflush(stdout);
    prev = std::move(cur);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "catalog-ingest") return CmdCatalogIngest(args);
  if (cmd == "catalog-info") return CmdCatalogInfo(args);
  if (cmd == "batch-query") return CmdBatchQuery(args);
  if (cmd == "serve-bench") return CmdServeBench(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "coord") return CmdCoord(args);
  if (cmd == "remote-query") return CmdRemoteQuery(args);
  if (cmd == "remote-cancel") return CmdRemoteCancel(args);
  if (cmd == "remote-bench") return CmdRemoteBench(args);
  if (cmd == "remote-ingest") return CmdRemoteIngest(args);
  if (cmd == "remote-drop") return CmdRemoteDrop(args);
  if (cmd == "stats") return CmdStats(args);
  return Usage();
}
