#!/usr/bin/env bash
# Full verification pipeline: Release build + the whole ctest suite, then a
# ThreadSanitizer build of the concurrent service and network tests. Mirrors what CI
# runs; use it locally before sending a PR.
#
#   tools/run_checks.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== Release build + ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== ThreadSanitizer: service_test + net_test ==="
cmake -B build-tsan -S . -DKVMATCH_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target service_test net_test
./build-tsan/service_test
./build-tsan/net_test

echo
echo "All checks passed."
