#!/usr/bin/env bash
# Full verification pipeline: Release build + the whole ctest suite (run
# twice — once with native SIMD dispatch, once with KVMATCH_FORCE_SCALAR=1
# to exercise the portable kernel tier), then a ThreadSanitizer build of
# the concurrent service/network/ingest/executor tests (including the
# racing-cancel suite) and an ASan+UBSan build of the
# storage/service/net/ingest/executor tests plus the crash-point-replay
# suite (fault_kvstore_test) and the scalar-vs-SIMD parity suite
# (simd_parity_test). Mirrors what CI runs; use it locally before sending
# a PR.
#
#   tools/run_checks.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== Release build + ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== Forced-scalar dispatch: full ctest with KVMATCH_FORCE_SCALAR=1 ==="
KVMATCH_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== ThreadSanitizer: service/net/coord/ingest/executor/trace/event-log tests ==="
cmake -B build-tsan -S . -DKVMATCH_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" \
  --target service_test net_test coord_test ingest_test executor_test \
           trace_test event_log_test storage_test simd_parity_test
./build-tsan/service_test
./build-tsan/net_test
./build-tsan/coord_test
./build-tsan/ingest_test
./build-tsan/executor_test
./build-tsan/trace_test
./build-tsan/event_log_test
./build-tsan/storage_test
./build-tsan/simd_parity_test

echo
echo "=== ASan+UBSan: storage/service/net/coord/ingest/executor + crash replay ==="
cmake -B build-asan -S . -DKVMATCH_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" \
  --target storage_test service_test net_test coord_test ingest_test \
           executor_test trace_test event_log_test fault_kvstore_test \
           simd_parity_test
./build-asan/storage_test
./build-asan/event_log_test
./build-asan/service_test
./build-asan/net_test
./build-asan/coord_test
./build-asan/ingest_test
./build-asan/executor_test
./build-asan/trace_test
./build-asan/fault_kvstore_test
./build-asan/simd_parity_test
KVMATCH_FORCE_SCALAR=1 ./build-asan/simd_parity_test

echo
echo "=== C10k smoke: 1000 idle connections parked on one reactor loop ==="
cmake --build build -j "$JOBS" --target bench_net_throughput
./build/bench_net_throughput --idle-connections 1000 --quick \
  --json build/idle_smoke.json
cat build/idle_smoke.json

echo
echo "All checks passed."
